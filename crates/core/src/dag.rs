//! Lazy evaluation: virtual matrices and the operation DAG (paper §3.4).
//!
//! Every matrix operation returns a *virtual matrix* — an [`Node`] in a
//! DAG — instead of computing data. Tall nodes share the partition
//! dimension of their inputs; *sink* nodes (aggregations, groupbys,
//! Gramians) change the partition dimension, form the edge of the DAG and
//! materialize to small in-memory matrices (`flashr_linalg::Dense`).
//!
//! Nodes are immutable and shared (`Arc`); `set.cache` is a flag examined
//! at materialization time, and a cached node carries its materialized
//! [`TasMat`] in a `OnceLock` so later DAGs treat it as a leaf.

use crate::dtype::{DType, Scalar};
use crate::gen::GenSpec;
use crate::mat::TasMat;
use crate::session::CachePin;
use crate::ops::{AggOp, BinaryOp, UnaryOp};
use flashr_linalg::Dense;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

static NODE_IDS: AtomicU64 = AtomicU64::new(1);

/// A map-operation input: a tall node, a scalar, or a broadcast row
/// vector (a small materialized sink result, e.g. column means).
#[derive(Debug, Clone)]
pub enum MapInput {
    Node(Arc<Node>),
    Scalar(Scalar),
    RowVec(Arc<Vec<f64>>),
}

/// The fused-map operation family: everything whose output partition `i`
/// depends only on input partitions `i` (paper Fig. 5 a–f).
#[derive(Debug, Clone)]
pub enum MapOp {
    /// `sapply`.
    Unary(UnaryOp),
    /// `mapply` with broadcasting; `swapped` evaluates `op(b, a)`.
    Binary { op: BinaryOp, swapped: bool },
    /// dtype conversion.
    Cast(DType),
    /// `X %*% B` with a small dense `B` (f64 fast path).
    MatMul(Arc<Dense>),
    /// Generalized `inner.prod(X, B, f1, f2)`.
    InnerProd { b: Arc<Dense>, f1: BinaryOp, f2: BinaryOp },
    /// Column selection `X[, idx]`.
    Select(Arc<Vec<usize>>),
    /// Column binding `cbind(...)`.
    Bind,
    /// `groupby.col`: reduce column groups per row (paper Table 1).
    GroupCols { labels: Arc<Vec<usize>>, op: AggOp, ngroups: usize },
}

/// Node kinds; see the module docs.
#[derive(Debug)]
pub enum NodeKind {
    /// A materialized matrix (in memory or on SSDs).
    Leaf(TasMat),
    /// A lazily generated matrix (`runif.matrix` & co).
    Gen(GenSpec),
    /// Partition-parallel map (Fig. 5 a–f).
    Map { op: MapOp, inputs: Vec<MapInput> },
    /// `agg.row` over a tall matrix: per-row over columns, n×1 output.
    AggRow { op: AggOp, input: Arc<Node> },
    /// `cum.row`: cumulative across the columns of each row.
    CumRow { op: BinaryOp, input: Arc<Node> },
    /// `cum.col`: cumulative down the rows (cross-partition carry).
    CumCol { op: BinaryOp, input: Arc<Node> },
    /// `agg` over everything → 1×1 sink.
    SinkFull { op: AggOp, input: Arc<Node> },
    /// `agg.col` → 1×p sink.
    SinkCol { op: AggOp, input: Arc<Node> },
    /// `t(A) %*% B` for two tall matrices → p×k sink (crossprod/Gramian).
    SinkGramian { a: Arc<Node>, b: Arc<Node> },
    /// `groupby.row(data, labels, op)` → ngroups×p sink.
    SinkGroupBy { data: Arc<Node>, labels: Arc<Node>, op: AggOp, ngroups: usize },
}

/// One virtual matrix.
#[derive(Debug)]
pub struct Node {
    pub id: u64,
    pub kind: NodeKind,
    /// Rows of the (tall) virtual matrix; for sinks, rows of the *output*.
    pub nrows: u64,
    pub ncols: usize,
    pub dtype: DType,
    cache_flag: AtomicBool,
    cached: OnceLock<CacheSlot>,
}

/// A node's installed materialization plus the memory-budget pin that
/// keeps it accounted (None for EM/spilled/unbudgeted results).
#[derive(Debug)]
struct CacheSlot {
    mat: TasMat,
    _pin: Option<CachePin>,
}

impl Node {
    fn new(kind: NodeKind, nrows: u64, ncols: usize, dtype: DType) -> Arc<Node> {
        Arc::new(Node {
            id: NODE_IDS.fetch_add(1, Ordering::Relaxed),
            kind,
            nrows,
            ncols,
            dtype,
            cache_flag: AtomicBool::new(false),
            cached: OnceLock::new(),
        })
    }

    /// Rebuild a node with an explicit kind/shape/dtype signature and no
    /// validation. Used by the plan rewriter (`crate::analysis::cse`) to
    /// re-parent nodes onto canonical children — the inputs were already
    /// validated when the original node was constructed — and by tests
    /// that need to forge ill-shaped nodes for the verifier.
    #[doc(hidden)]
    pub fn raw(kind: NodeKind, nrows: u64, ncols: usize, dtype: DType) -> Arc<Node> {
        Node::new(kind, nrows, ncols, dtype)
    }

    /// Wrap a materialized matrix.
    pub fn leaf(mat: TasMat) -> Arc<Node> {
        let (nrows, ncols, dtype) = (mat.nrows(), mat.ncols(), mat.dtype());
        Node::new(NodeKind::Leaf(mat), nrows, ncols, dtype)
    }

    /// A lazily generated matrix.
    pub fn gen(spec: GenSpec, nrows: u64, ncols: usize) -> Arc<Node> {
        let dt = spec.dtype();
        Node::new(NodeKind::Gen(spec), nrows, ncols, dt)
    }

    /// `sapply`: unary map. Integer inputs to float-only functions are
    /// cast to f64 first (R promotion).
    pub fn map_unary(op: UnaryOp, input: Arc<Node>) -> Arc<Node> {
        let input = if op.needs_float() && !input.dtype.is_float() {
            Node::cast(input, DType::F64)
        } else {
            input
        };
        let (nrows, ncols) = (input.nrows, input.ncols);
        let dtype = op.out_dtype(input.dtype);
        Node::new(NodeKind::Map { op: MapOp::Unary(op), inputs: vec![MapInput::Node(input)] }, nrows, ncols, dtype)
    }

    /// `mapply`: binary map with broadcasting. Operand dtypes are
    /// promoted by inserting cast nodes. When `b` is a node it must have
    /// the same rows and either the same columns or one column.
    pub fn map_binary(op: BinaryOp, a: Arc<Node>, b: MapInput, swapped: bool) -> Arc<Node> {
        let (a, b) = match b {
            MapInput::Node(bn) => {
                assert_eq!(a.nrows, bn.nrows, "mapply row mismatch: {} vs {}", a.nrows, bn.nrows);
                assert!(
                    bn.ncols == a.ncols || bn.ncols == 1,
                    "mapply col mismatch: {} vs {}",
                    a.ncols,
                    bn.ncols
                );
                let common = DType::promote(a.dtype, bn.dtype);
                (Node::cast(a, common), MapInput::Node(Node::cast(bn, common)))
            }
            MapInput::Scalar(s) => {
                let common = DType::promote(a.dtype, s.dtype());
                (Node::cast(a, common), MapInput::Scalar(s))
            }
            MapInput::RowVec(v) => {
                assert_eq!(v.len(), a.ncols, "sweep stats length mismatch");
                let common = DType::promote(a.dtype, DType::F64);
                (Node::cast(a, common), MapInput::RowVec(v))
            }
        };
        let dtype = op.out_dtype(a.dtype);
        let (nrows, ncols) = (a.nrows, a.ncols);
        Node::new(
            NodeKind::Map { op: MapOp::Binary { op, swapped }, inputs: vec![MapInput::Node(a), b] },
            nrows,
            ncols,
            dtype,
        )
    }

    /// dtype cast (no-op node elided).
    pub fn cast(input: Arc<Node>, to: DType) -> Arc<Node> {
        if input.dtype == to {
            return input;
        }
        let (nrows, ncols) = (input.nrows, input.ncols);
        Node::new(NodeKind::Map { op: MapOp::Cast(to), inputs: vec![MapInput::Node(input)] }, nrows, ncols, to)
    }

    /// `X %*% B` with small dense `B` (input is cast to f64).
    pub fn matmul_small(input: Arc<Node>, b: Dense) -> Arc<Node> {
        assert_eq!(input.ncols, b.rows(), "matmul inner dimension mismatch");
        let input = Node::cast(input, DType::F64);
        let (nrows, k) = (input.nrows, b.cols());
        Node::new(
            NodeKind::Map { op: MapOp::MatMul(Arc::new(b)), inputs: vec![MapInput::Node(input)] },
            nrows,
            k,
            DType::F64,
        )
    }

    /// Generalized `inner.prod(X, B, f1, f2)`.
    pub fn inner_prod_small(input: Arc<Node>, b: Dense, f1: BinaryOp, f2: BinaryOp) -> Arc<Node> {
        assert_eq!(input.ncols, b.rows(), "inner.prod inner dimension mismatch");
        let (nrows, k, dtype) = (input.nrows, b.cols(), input.dtype);
        Node::new(
            NodeKind::Map {
                op: MapOp::InnerProd { b: Arc::new(b), f1, f2 },
                inputs: vec![MapInput::Node(input)],
            },
            nrows,
            k,
            dtype,
        )
    }

    /// Column selection.
    pub fn select(input: Arc<Node>, idx: Vec<usize>) -> Arc<Node> {
        for &c in &idx {
            assert!(c < input.ncols, "column {c} out of range");
        }
        let (nrows, k, dtype) = (input.nrows, idx.len(), input.dtype);
        Node::new(
            NodeKind::Map { op: MapOp::Select(Arc::new(idx)), inputs: vec![MapInput::Node(input)] },
            nrows,
            k,
            dtype,
        )
    }

    /// Column binding; dtypes promote to the widest input.
    pub fn bind_cols(inputs: Vec<Arc<Node>>) -> Arc<Node> {
        assert!(!inputs.is_empty(), "cbind of nothing");
        let nrows = inputs[0].nrows;
        let mut dtype = inputs[0].dtype;
        for n in &inputs {
            assert_eq!(n.nrows, nrows, "cbind row mismatch");
            dtype = DType::promote(dtype, n.dtype);
        }
        let ncols = inputs.iter().map(|n| n.ncols).sum();
        let inputs = inputs
            .into_iter()
            .map(|n| MapInput::Node(Node::cast(n, dtype)))
            .collect();
        Node::new(NodeKind::Map { op: MapOp::Bind, inputs }, nrows, ncols, dtype)
    }

    /// `groupby.col`: column labels must be in `[0, ngroups)`.
    pub fn group_cols(
        input: Arc<Node>,
        labels: Vec<usize>,
        op: AggOp,
        ngroups: usize,
    ) -> Arc<Node> {
        assert_eq!(labels.len(), input.ncols, "one label per column required");
        assert!(!op.is_positional(), "which.min/which.max are not defined for groupby.col");
        for &g in &labels {
            assert!(g < ngroups, "column label {g} outside [0, {ngroups})");
        }
        let nrows = input.nrows;
        let dtype = op.out_dtype(input.dtype);
        Node::new(
            NodeKind::Map {
                op: MapOp::GroupCols { labels: Arc::new(labels), op, ngroups },
                inputs: vec![MapInput::Node(input)],
            },
            nrows,
            ngroups,
            dtype,
        )
    }

    /// `agg.row`.
    pub fn agg_row(op: AggOp, input: Arc<Node>) -> Arc<Node> {
        let nrows = input.nrows;
        let dtype = op.out_dtype(input.dtype);
        Node::new(NodeKind::AggRow { op, input }, nrows, 1, dtype)
    }

    /// `cum.row`.
    pub fn cum_row(op: BinaryOp, input: Arc<Node>) -> Arc<Node> {
        let (nrows, ncols, dtype) = (input.nrows, input.ncols, input.dtype);
        Node::new(NodeKind::CumRow { op, input }, nrows, ncols, dtype)
    }

    /// `cum.col`.
    pub fn cum_col(op: BinaryOp, input: Arc<Node>) -> Arc<Node> {
        let (nrows, ncols, dtype) = (input.nrows, input.ncols, input.dtype);
        Node::new(NodeKind::CumCol { op, input }, nrows, ncols, dtype)
    }

    /// `agg` over all elements → scalar sink.
    pub fn sink_full(op: AggOp, input: Arc<Node>) -> Arc<Node> {
        let dtype = op.out_dtype(input.dtype);
        Node::new(NodeKind::SinkFull { op, input }, 1, 1, dtype)
    }

    /// `agg.col` → 1×p sink.
    pub fn sink_col(op: AggOp, input: Arc<Node>) -> Arc<Node> {
        let ncols = input.ncols;
        let dtype = op.out_dtype(input.dtype);
        Node::new(NodeKind::SinkCol { op, input }, 1, ncols, dtype)
    }

    /// `t(A) %*% B` → p×k sink (both inputs cast to f64).
    pub fn sink_gramian(a: Arc<Node>, b: Arc<Node>) -> Arc<Node> {
        assert_eq!(a.nrows, b.nrows, "crossprod row mismatch");
        let a = Node::cast(a, DType::F64);
        let b = Node::cast(b, DType::F64);
        let (p, k) = (a.ncols, b.ncols);
        Node::new(NodeKind::SinkGramian { a, b }, p as u64, k, DType::F64)
    }

    /// `groupby.row(data, labels, op)` → ngroups×p sink. Labels are cast
    /// to i64 and must hold values in `[0, ngroups)`.
    pub fn sink_groupby(data: Arc<Node>, labels: Arc<Node>, op: AggOp, ngroups: usize) -> Arc<Node> {
        assert_eq!(labels.ncols, 1, "groupby labels must be one column");
        assert_eq!(data.nrows, labels.nrows, "groupby label length mismatch");
        assert!(ngroups > 0, "ngroups must be positive");
        let labels = Node::cast(labels, DType::I64);
        let p = data.ncols;
        Node::new(NodeKind::SinkGroupBy { data, labels, op, ngroups }, ngroups as u64, p, DType::F64)
    }

    /// Whether the node changes the partition dimension (edge of a DAG).
    pub fn is_sink(&self) -> bool {
        matches!(
            self.kind,
            NodeKind::SinkFull { .. }
                | NodeKind::SinkCol { .. }
                | NodeKind::SinkGramian { .. }
                | NodeKind::SinkGroupBy { .. }
        )
    }

    /// Tall-node child references (sinks report their tall inputs).
    pub fn children(&self) -> Vec<&Arc<Node>> {
        match &self.kind {
            NodeKind::Leaf(_) | NodeKind::Gen(_) => vec![],
            NodeKind::Map { inputs, .. } => inputs
                .iter()
                .filter_map(|i| match i {
                    MapInput::Node(n) => Some(n),
                    _ => None,
                })
                .collect(),
            NodeKind::AggRow { input, .. }
            | NodeKind::CumRow { input, .. }
            | NodeKind::CumCol { input, .. }
            | NodeKind::SinkFull { input, .. }
            | NodeKind::SinkCol { input, .. } => vec![input],
            NodeKind::SinkGramian { a, b } => vec![a, b],
            NodeKind::SinkGroupBy { data, labels, .. } => vec![data, labels],
        }
    }

    /// Request caching of this node's data at next materialization
    /// (R's `set.cache`).
    pub fn set_cache(&self, v: bool) {
        self.cache_flag.store(v, Ordering::Relaxed);
    }

    /// Whether `set.cache` was requested.
    pub fn cache_requested(&self) -> bool {
        self.cache_flag.load(Ordering::Relaxed)
    }

    /// The cached materialization, if any.
    pub fn cached(&self) -> Option<&TasMat> {
        self.cached.get().map(|slot| &slot.mat)
    }

    /// Install the cached materialization (idempotent; first write wins).
    pub fn install_cache(&self, mat: TasMat) {
        self.install_cache_pinned(mat, None);
    }

    /// Install the cached materialization together with its memory
    /// pin, released when this node (the last DAG referencing it) is
    /// dropped.
    pub fn install_cache_pinned(&self, mat: TasMat, pin: Option<CachePin>) {
        let _ = self.cached.set(CacheSlot { mat, _pin: pin });
    }

    /// Whether the executor can treat this node as a leaf.
    pub fn is_effective_leaf(&self) -> bool {
        self.cached.get().is_some() || matches!(self.kind, NodeKind::Leaf(_) | NodeKind::Gen(_))
    }

    /// Short operator label in the paper's R-level vocabulary, used by
    /// `explain()` output and op-level trace profiles.
    pub fn label(&self) -> String {
        match &self.kind {
            NodeKind::Leaf(m) => {
                if m.is_em() {
                    "leaf(em)".into()
                } else {
                    "leaf".into()
                }
            }
            NodeKind::Gen(_) => "gen".into(),
            NodeKind::Map { op, .. } => match op {
                MapOp::Unary(u) => format!("sapply:{u:?}"),
                MapOp::Binary { op, .. } => format!("mapply:{op:?}"),
                MapOp::Cast(dt) => format!("cast:{dt:?}"),
                MapOp::MatMul(_) => "matmul".into(),
                MapOp::InnerProd { .. } => "inner.prod".into(),
                MapOp::Select(_) => "select".into(),
                MapOp::Bind => "cbind".into(),
                MapOp::GroupCols { op, .. } => format!("groupby.col:{op:?}"),
            },
            NodeKind::AggRow { op, .. } => format!("agg.row:{op:?}"),
            NodeKind::CumRow { op, .. } => format!("cum.row:{op:?}"),
            NodeKind::CumCol { op, .. } => format!("cum.col:{op:?}"),
            NodeKind::SinkFull { op, .. } => format!("agg:{op:?}"),
            NodeKind::SinkCol { op, .. } => format!("agg.col:{op:?}"),
            NodeKind::SinkGramian { .. } => "crossprod".into(),
            NodeKind::SinkGroupBy { op, .. } => format!("groupby.row:{op:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::part::Partitioner;

    fn leaf_f64(n: u64, p: usize) -> Arc<Node> {
        Node::leaf(TasMat::from_fn::<f64>(n, p, Partitioner::new(64), |r, c| {
            r as f64 + c as f64
        }))
    }

    fn leaf_i32(n: u64, p: usize) -> Arc<Node> {
        Node::leaf(TasMat::from_fn::<i32>(n, p, Partitioner::new(64), |r, c| {
            r as i32 + c as i32
        }))
    }

    #[test]
    fn unary_float_promotion_inserts_cast() {
        let a = leaf_i32(10, 2);
        let s = Node::map_unary(UnaryOp::Sqrt, a);
        assert_eq!(s.dtype, DType::F64);
        // child of the map should be a cast node
        let child = s.children()[0].clone();
        assert!(matches!(child.kind, NodeKind::Map { op: MapOp::Cast(DType::F64), .. }));
    }

    #[test]
    fn binary_promotes_operands() {
        let a = leaf_i32(10, 2);
        let b = leaf_f64(10, 2);
        let s = Node::map_binary(BinaryOp::Add, a, MapInput::Node(b), false);
        assert_eq!(s.dtype, DType::F64);
        assert_eq!(s.ncols, 2);
    }

    #[test]
    fn predicates_are_u8() {
        let a = leaf_f64(10, 2);
        let b = leaf_f64(10, 2);
        let s = Node::map_binary(BinaryOp::Lt, a, MapInput::Node(b), false);
        assert_eq!(s.dtype, DType::U8);
    }

    #[test]
    fn sink_shapes() {
        let a = leaf_f64(100, 4);
        let b = leaf_f64(100, 3);
        let g = Node::sink_gramian(a.clone(), b);
        assert_eq!((g.nrows, g.ncols), (4, 3));
        assert!(g.is_sink());

        let sc = Node::sink_col(AggOp::Sum, a.clone());
        assert_eq!((sc.nrows, sc.ncols), (1, 4));

        let labels = Node::leaf(TasMat::from_fn::<i64>(100, 1, Partitioner::new(64), |r, _| {
            (r % 5) as i64
        }));
        let gb = Node::sink_groupby(a.clone(), labels, AggOp::Sum, 5);
        assert_eq!((gb.nrows, gb.ncols), (5, 4));

        let sf = Node::sink_full(AggOp::Sum, a);
        assert_eq!((sf.nrows, sf.ncols), (1, 1));
    }

    #[test]
    fn agg_row_shape_and_dtype() {
        let a = leaf_i32(50, 3);
        let r = Node::agg_row(AggOp::Sum, a.clone());
        assert_eq!((r.nrows, r.ncols), (50, 1));
        assert_eq!(r.dtype, DType::I64);
        let w = Node::agg_row(AggOp::WhichMin, a);
        assert_eq!(w.dtype, DType::I64);
    }

    #[test]
    #[should_panic]
    fn mapply_shape_mismatch_panics() {
        let a = leaf_f64(10, 2);
        let b = leaf_f64(20, 2);
        let _ = Node::map_binary(BinaryOp::Add, a, MapInput::Node(b), false);
    }

    #[test]
    fn cache_flag_roundtrip() {
        let a = leaf_f64(10, 1);
        assert!(!a.cache_requested());
        a.set_cache(true);
        assert!(a.cache_requested());
    }

    #[test]
    fn bind_cols_promotes_and_sums_width() {
        let a = leaf_i32(10, 2);
        let b = leaf_f64(10, 3);
        let n = Node::bind_cols(vec![a, b]);
        assert_eq!(n.ncols, 5);
        assert_eq!(n.dtype, DType::F64);
    }
}
