//! The FlashR execution context: threads, engine mode, partitioning,
//! simulated NUMA topology and the optional SSD array.

use crate::analysis::calibrate::{self, CalibState, Calibration};
use crate::mat::TasMat;
use crate::metrics::flight::{self, TeeSink};
use crate::metrics::serve::claim_metrics_addr;
use crate::metrics::sources::{CalibrationSource, ExecStatsSource, GovernorSource, SafsSource};
use crate::metrics::{FlightRecorder, MetricsHub, MetricsServer};
use crate::part::Partitioner;
use crate::stats::ExecStats;
use crate::trace::timeline::claim_trace_out;
use crate::trace::{CriticalPath, ProfileReport, TraceLevel, Tracer};
use flashr_safs::{CacheCfg, Safs, SafsConfig, SafsResult, SpanSink};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How DAGs are materialized — exactly the three configurations the
/// paper's Figure 10 ablates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// "base": every operation materialized separately, one full pass per
    /// operation (Spark-style).
    Eager,
    /// "+mem-fuse": one pass over I/O partitions, whole-partition
    /// intermediates (fused in memory, not in cache).
    MemFuse,
    /// "+cache-fuse" (default): Pcache partitioning with depth-first
    /// chaining through the CPU cache.
    CacheFuse,
}

/// Where materialized matrices are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageClass {
    /// NUMA-tagged memory chunks.
    InMem,
    /// The SSD array (requires a [`Safs`] runtime on the context).
    Em,
}

/// Tunables for a [`FlashCtx`].
#[derive(Debug, Clone)]
pub struct CtxConfig {
    /// Worker threads for materialization.
    pub nthreads: usize,
    /// Engine mode (Fig. 10 ablation axis).
    pub mode: ExecMode,
    /// Per-matrix Pcache budget in bytes (sized against L2).
    pub pcache_bytes: usize,
    /// Rows per I/O partition (power of two).
    pub rows_per_part: u64,
    /// Simulated NUMA nodes.
    pub numa_nodes: usize,
    /// Default placement of materialized tall matrices.
    pub storage: StorageClass,
    /// Placement of `set.cache` byproducts (the paper caches reused
    /// vectors in memory by default but supports caching on SSDs).
    pub cache_storage: StorageClass,
    /// Tracing level (defaults to the `FLASHR_TRACE` environment
    /// variable; off when unset).
    pub trace: TraceLevel,
    /// Whether the static analyzer's DAG rewrites (CSE, cast/cbind
    /// collapsing) are applied before execution. Verification and lints
    /// always run; disabling this executes the original DAG — the A/B
    /// knob for measuring what the rewrite saves.
    pub optimize: bool,
    /// Whether maximal single-consumer chains of element-wise maps are
    /// compiled into strip-mined fused kernels at plan-build time
    /// (skipping the per-op intermediate chunks). The A/B knob mirroring
    /// [`optimize`](CtxConfig::optimize); results are bit-identical
    /// either way.
    pub fuse_chains: bool,
    /// Whether the cost-based plan optimizer runs before execution:
    /// auto-`set.cache` of reused subtrees the [`MemGovernor`] admits,
    /// matmul-aware fusion boundaries, per-plan Pcache-step and
    /// readahead-depth choices, and eager pass reordering for leaf
    /// sharing. Off by default — the analyzer then only *warns* (W001/
    /// W004); the figure bins and benches opt in. The third A/B knob
    /// alongside [`optimize`](CtxConfig::optimize) and
    /// [`fuse_chains`](CtxConfig::fuse_chains).
    pub cost_optimize: bool,
    /// Whether the cost model's constants are calibrated from the
    /// profile history store (`FLASHR_PROFILE_DIR`) at context build:
    /// per-category throughput rates and the device-read absorption
    /// factor are fitted as medians over records matching this host's
    /// `(cpus, build, backend, simd)` stamp and used to re-price
    /// estimates. Estimates only — no plan *action* consults the
    /// re-priced value, so outputs stay bit-identical with the knob on
    /// or off. The fourth A/B knob alongside
    /// [`cost_optimize`](CtxConfig::cost_optimize).
    pub calibrate: bool,
    /// Upper bound on in-flight asynchronous external-memory output
    /// writes per worker. When the bound is reached the worker waits for
    /// the *oldest* write only, keeping the remaining slots streaming.
    pub max_pending_writes: usize,
    /// Optional global memory budget. On an EM context this sizes the
    /// SAFS page cache and bounds `set.cache` pinning (over-budget
    /// cached matrices spill to SAFS temporaries); `None` keeps the
    /// historical unlimited behavior.
    pub mem_budget: Option<MemBudget>,
}

impl Default for CtxConfig {
    fn default() -> Self {
        CtxConfig {
            nthreads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            mode: ExecMode::CacheFuse,
            pcache_bytes: 256 * 1024,
            rows_per_part: Partitioner::DEFAULT_ROWS,
            numa_nodes: 2,
            storage: StorageClass::InMem,
            cache_storage: StorageClass::InMem,
            trace: TraceLevel::from_env(),
            optimize: true,
            fuse_chains: true,
            cost_optimize: false,
            calibrate: false,
            max_pending_writes: 8,
            mem_budget: None,
        }
    }
}

/// A global memory budget shared by the SAFS page cache and `set.cache`
/// materializations (paper §3.2.1: FlashR keeps both under one
/// memory-size knob so EM sessions degrade gracefully instead of
/// swapping).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemBudget {
    /// Total bytes the session may pin (0 = unlimited, the historical
    /// behavior).
    pub total_bytes: u64,
    /// Fraction of the budget handed to the SAFS page cache; the rest
    /// backs pinned `set.cache` matrices. Only meaningful on EM
    /// contexts.
    pub cache_fraction: f64,
}

impl MemBudget {
    /// A budget of `total_bytes`, split evenly between the page cache
    /// and pinned materializations.
    pub fn new(total_bytes: u64) -> Self {
        MemBudget { total_bytes, cache_fraction: 0.5 }
    }

    /// Builder-style: set the page-cache share of the budget.
    pub fn with_cache_fraction(mut self, f: f64) -> Self {
        self.cache_fraction = f.clamp(0.0, 1.0);
        self
    }

    pub(crate) fn cache_bytes(&self) -> u64 {
        (self.total_bytes as f64 * self.cache_fraction) as u64
    }

    pub(crate) fn pin_bytes(&self) -> u64 {
        self.total_bytes - self.cache_bytes()
    }
}

struct GovInner {
    /// Pinnable budget in bytes; 0 means "unlimited" (every pin
    /// succeeds and nothing spills).
    budget: u64,
    pinned: AtomicU64,
    spills: AtomicU64,
    overcommits: AtomicU64,
}

/// Tracks how much memory `set.cache` materializations have pinned and
/// decides when a cached matrix must spill to a SAFS temporary instead.
///
/// Cheap to clone; all clones share the same accounting.
#[derive(Clone)]
pub struct MemGovernor {
    inner: Arc<GovInner>,
}

impl MemGovernor {
    pub(crate) fn new(budget: u64) -> Self {
        MemGovernor {
            inner: Arc::new(GovInner {
                budget,
                pinned: AtomicU64::new(0),
                spills: AtomicU64::new(0),
                overcommits: AtomicU64::new(0),
            }),
        }
    }

    /// Try to reserve `bytes` of the pin budget. `None` means the caller
    /// should spill instead. With an unlimited budget every pin succeeds.
    pub fn try_pin(&self, bytes: u64) -> Option<CachePin> {
        if self.inner.budget == 0 {
            self.inner.pinned.fetch_add(bytes, Ordering::Relaxed);
            return Some(CachePin { gov: self.inner.clone(), bytes });
        }
        let mut cur = self.inner.pinned.load(Ordering::Relaxed);
        loop {
            let next = cur.checked_add(bytes)?;
            if next > self.inner.budget {
                return None;
            }
            match self.inner.pinned.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(CachePin { gov: self.inner.clone(), bytes }),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Reserve `bytes` unconditionally (used when there is nowhere to
    /// spill to); counts an overcommit when this bursts the budget.
    pub(crate) fn force_pin(&self, bytes: u64) -> CachePin {
        let prev = self.inner.pinned.fetch_add(bytes, Ordering::Relaxed);
        if self.inner.budget > 0 && prev.saturating_add(bytes) > self.inner.budget {
            self.inner.overcommits.fetch_add(1, Ordering::Relaxed);
        }
        CachePin { gov: self.inner.clone(), bytes }
    }

    pub(crate) fn note_spill(&self) {
        self.inner.spills.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether a pin of `bytes` would currently succeed, without
    /// reserving anything. The plan optimizer's admission probe: racy by
    /// design (a concurrent pin can invalidate the answer), so the
    /// actual reservation still goes through [`try_pin`](Self::try_pin)
    /// at materialization time and falls back to spilling.
    pub fn would_admit(&self, bytes: u64) -> bool {
        if self.inner.budget == 0 {
            return true;
        }
        match self.inner.pinned.load(Ordering::Relaxed).checked_add(bytes) {
            Some(next) => next <= self.inner.budget,
            None => false,
        }
    }

    /// The pinnable budget in bytes (0 = unlimited).
    pub fn budget_bytes(&self) -> u64 {
        self.inner.budget
    }

    /// Bytes currently pinned by live `set.cache` matrices.
    pub fn pinned_bytes(&self) -> u64 {
        self.inner.pinned.load(Ordering::Relaxed)
    }

    /// How many cached matrices spilled to SAFS temporaries.
    pub fn spills(&self) -> u64 {
        self.inner.spills.load(Ordering::Relaxed)
    }

    /// How many pins burst the budget because no SAFS runtime was
    /// available to spill to.
    pub fn overcommits(&self) -> u64 {
        self.inner.overcommits.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for MemGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemGovernor")
            .field("budget", &self.inner.budget)
            .field("pinned", &self.pinned_bytes())
            .field("spills", &self.spills())
            .finish()
    }
}

/// RAII reservation of pin budget; releases its bytes on drop (i.e.
/// when the cached matrix it guards is dropped or uncached).
pub struct CachePin {
    gov: Arc<GovInner>,
    bytes: u64,
}

impl Drop for CachePin {
    fn drop(&mut self) {
        self.gov.pinned.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for CachePin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CachePin({} bytes)", self.bytes)
    }
}

/// A FlashR session. Cheap to clone (shared internals).
#[derive(Clone)]
pub struct FlashCtx {
    inner: Arc<CtxInner>,
}

struct CtxInner {
    cfg: CtxConfig,
    safs: Option<Safs>,
    stats: Arc<ExecStats>,
    tracer: Tracer,
    governor: MemGovernor,
    metrics: Arc<MetricsHub>,
    flight: Arc<FlightRecorder>,
    /// The scrape listener, when this context claimed
    /// `FLASHR_METRICS_ADDR`. Held for its Drop (shuts the thread down
    /// with the last context clone).
    metrics_server: Option<MetricsServer>,
    /// Cross-pass recycler for tall-output partition buffers.
    part_bufs: Arc<crate::chunk::PartBufPool>,
    /// Fitted cost-model constants (when [`CtxConfig::calibrate`] found
    /// matching history) plus this context's rolling prediction error.
    calib: Arc<CalibState>,
}

impl Drop for CtxInner {
    fn drop(&mut self) {
        // Shut the scrape listener down before releasing the address
        // claim, so the next context to start can re-bind the same
        // `FLASHR_METRICS_ADDR` without racing the dying socket.
        if let Some(srv) = self.metrics_server.take() {
            drop(srv);
            crate::metrics::serve::release_metrics_addr();
        }
        // `FLASHR_TRACE_OUT=<path>`: dump the Chrome trace when the last
        // clone of the context goes away. First context wins the path
        // (claimed once per process) so multi-context programs don't
        // overwrite each other; programs wanting a merged view export
        // explicitly via [`FlashCtx::export_chrome_trace`].
        let Some(tl) = self.tracer.timeline() else { return };
        if tl.total_events() == 0 {
            return;
        }
        if let Some(path) = claim_trace_out() {
            let _ = std::fs::write(&path, crate::trace::chrome::export_single("flashr", tl));
        }
    }
}

impl FlashCtx {
    /// An in-memory context with default settings.
    pub fn in_memory() -> FlashCtx {
        FlashCtx::with_config(CtxConfig::default(), None)
    }

    /// A context backed by an SSD array; materialized matrices default to
    /// external memory.
    pub fn on_ssds(safs_cfg: SafsConfig) -> SafsResult<FlashCtx> {
        let safs = Safs::open(safs_cfg)?;
        let cfg = CtxConfig { storage: StorageClass::Em, ..CtxConfig::default() };
        Ok(FlashCtx::with_config(cfg, Some(safs)))
    }

    /// Full control.
    pub fn with_config(cfg: CtxConfig, safs: Option<Safs>) -> FlashCtx {
        assert!(cfg.nthreads >= 1, "need at least one worker thread");
        assert!(cfg.numa_nodes >= 1, "need at least one NUMA node");
        if cfg.storage == StorageClass::Em || cfg.cache_storage == StorageClass::Em {
            assert!(safs.is_some(), "EM storage requires a SAFS runtime");
        }
        let tracer = Tracer::new(cfg.trace);
        let flight = Arc::new(FlightRecorder::with_env_budget());
        flight::register_panic_dump(&flight);
        if let Some(s) = &safs {
            // The SAFS I/O threads record request lifecycle and cache
            // spans on their own (thread-named) lanes: always into the
            // flight recorder's bounded rings, and — when tracing at
            // timeline level — into the full timeline as well.
            s.set_span_sink(Some(Arc::new(TeeSink {
                flight: flight.clone(),
                timeline: tracer.timeline().cloned(),
            }) as Arc<dyn SpanSink>));
        }
        let governor = match (&cfg.mem_budget, &safs) {
            (Some(b), Some(s)) if b.total_bytes > 0 => {
                // Hand the cache share to the SAFS page cache (sharded
                // like the engine's NUMA tagging) and keep the rest as
                // the pin budget.
                s.set_page_cache(Some(
                    CacheCfg::with_capacity(b.cache_bytes()).with_shards(cfg.numa_nodes),
                ));
                MemGovernor::new(b.pin_bytes())
            }
            // No SSD array: the whole budget bounds pinning.
            (Some(b), None) => MemGovernor::new(b.total_bytes),
            _ => MemGovernor::new(0),
        };
        let stats = Arc::new(ExecStats::default());
        // Calibration: replay the profile history store (if the knob is
        // on and `FLASHR_PROFILE_DIR` holds matching records) into
        // fitted cost-model constants. The state object always exists so
        // the metrics source exports a stable gauge family set.
        let calib = Arc::new(CalibState::new(if cfg.calibrate {
            let backend = safs.as_ref().map(|s| s.backend_kind().as_str()).unwrap_or("none");
            calibrate::load(backend, flashr_linalg::SimdLevel::active().name())
        } else {
            None
        }));
        let metrics = Arc::new(MetricsHub::new());
        metrics.register_source(Box::new(ExecStatsSource(stats.clone())));
        metrics.register_source(Box::new(GovernorSource(governor.clone())));
        metrics.register_source(Box::new(CalibrationSource(calib.clone())));
        if let Some(s) = &safs {
            metrics.register_source(Box::new(SafsSource(s.clone())));
        }
        flight.set_metrics(metrics.clone());
        let metrics_server = claim_metrics_addr().and_then(|addr| {
            let hub = metrics.clone();
            match MetricsServer::start(&addr, Arc::new(move || hub.render_text())) {
                Ok(srv) => {
                    eprintln!("flashr: metrics listening on http://{}/metrics", srv.addr());
                    Some(srv)
                }
                Err(e) => {
                    eprintln!("flashr: could not bind FLASHR_METRICS_ADDR={addr}: {e}");
                    None
                }
            }
        });
        FlashCtx {
            inner: Arc::new(CtxInner {
                cfg,
                safs,
                stats,
                tracer,
                governor,
                metrics,
                flight,
                metrics_server,
                part_bufs: Arc::new(crate::chunk::PartBufPool::new()),
                calib,
            }),
        }
    }

    /// The configuration.
    pub fn cfg(&self) -> &CtxConfig {
        &self.inner.cfg
    }

    /// The partitioner every matrix in this context uses.
    pub fn parter(&self) -> Partitioner {
        Partitioner::new(self.inner.cfg.rows_per_part)
    }

    /// The SSD array, if any.
    pub fn safs(&self) -> Option<&Safs> {
        self.inner.safs.as_ref()
    }

    /// Engine statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.inner.stats
    }

    /// The trace collector (shared by all clones of this context).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The always-on metrics registry (shared by all clones).
    pub fn metrics(&self) -> &Arc<MetricsHub> {
        &self.inner.metrics
    }

    /// The current Prometheus text-format exposition — the same document
    /// the `FLASHR_METRICS_ADDR` scrape listener serves.
    pub fn metrics_text(&self) -> String {
        self.inner.metrics.render_text()
    }

    /// The fault flight recorder (shared by all clones).
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.inner.flight
    }

    /// Where the scrape listener is bound, when this context claimed
    /// `FLASHR_METRICS_ADDR` and the bind succeeded.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.inner.metrics_server.as_ref().map(|s| s.addr())
    }

    /// Everything this context observed — engine counters, SAFS I/O
    /// counters and latency histograms (if on SSDs), and the recorded
    /// pass profiles — ready for [`ProfileReport::to_json`].
    pub fn profile_report(&self) -> ProfileReport {
        let passes = self.inner.tracer.passes();
        let lanes =
            self.inner.tracer.timeline().map(|t| t.snapshot()).unwrap_or_default();
        ProfileReport {
            exec: self.inner.stats.snapshot(),
            io: self.inner.safs.as_ref().map(|s| s.stats_snapshot()),
            io_shards: self
                .inner
                .safs
                .as_ref()
                .map(|s| s.shard_stats_snapshots())
                .unwrap_or_default(),
            critical_path: CriticalPath::analyze(&passes, &lanes),
            dropped_events: self.inner.tracer.dropped_events(),
            passes,
            dropped_passes: self.inner.tracer.dropped_passes(),
        }
    }

    /// The timeline (if tracing at [`TraceLevel::Timeline`]) serialized
    /// as a Chrome `trace_event` JSON document for Perfetto /
    /// `chrome://tracing`. Empty document when timeline tracing is off.
    pub fn export_chrome_trace(&self) -> String {
        self.inner.tracer.export_chrome_trace()
    }

    /// A copy of this context with a different engine mode.
    pub fn with_mode(&self, mode: ExecMode) -> FlashCtx {
        let cfg = CtxConfig { mode, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// A copy of this context with a different default storage class.
    pub fn with_storage(&self, storage: StorageClass) -> FlashCtx {
        let cfg = CtxConfig { storage, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// A copy of this context with a different trace level (fresh
    /// tracer; the original's recordings are untouched).
    pub fn with_trace(&self, trace: TraceLevel) -> FlashCtx {
        let cfg = CtxConfig { trace, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// A copy of this context with the analyzer's DAG rewrites switched
    /// on or off (verification and lints always run).
    pub fn with_optimize(&self, optimize: bool) -> FlashCtx {
        let cfg = CtxConfig { optimize, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// A copy of this context with map-chain fusion switched on or off
    /// (single-op interpretation is used when off; results are
    /// bit-identical either way).
    pub fn with_fuse_chains(&self, fuse_chains: bool) -> FlashCtx {
        let cfg = CtxConfig { fuse_chains, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// A copy of this context with the cost-based plan optimizer
    /// switched on or off (see [`CtxConfig::cost_optimize`]).
    pub fn with_cost_optimize(&self, cost_optimize: bool) -> FlashCtx {
        let cfg = CtxConfig { cost_optimize, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// A copy of this context with history calibration switched on or
    /// off (see [`CtxConfig::calibrate`]; the store is re-read at
    /// build).
    pub fn with_calibrate(&self, calibrate: bool) -> FlashCtx {
        let cfg = CtxConfig { calibrate, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// The fitted cost-model constants, when [`CtxConfig::calibrate`] is
    /// on and the history store held records matching this host.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.inner.calib.calibration.as_ref()
    }

    /// Calibration state: fitted constants plus the rolling
    /// |predicted − actual| device-read error this context accumulates.
    pub fn calib_state(&self) -> &CalibState {
        &self.inner.calib
    }

    /// A copy of this context with a memory budget (resizes the SAFS
    /// page cache and starts fresh pin accounting).
    pub fn with_mem_budget(&self, budget: MemBudget) -> FlashCtx {
        let cfg = CtxConfig { mem_budget: Some(budget), ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// The memory governor bounding `set.cache` pinning.
    pub fn governor(&self) -> &MemGovernor {
        &self.inner.governor
    }

    /// The cross-pass recycler tall outputs draw their partition buffers
    /// from (result matrices return buffers here on drop).
    pub fn part_buf_pool(&self) -> &Arc<crate::chunk::PartBufPool> {
        &self.inner.part_bufs
    }

    /// Admission control for a freshly materialized `set.cache` matrix:
    /// pin it in memory if the budget allows, otherwise spill it to a
    /// SAFS-backed temporary (it re-enters memory through the page
    /// cache). EM results are already on the array and need no pin.
    pub(crate) fn admit_cache(&self, mat: TasMat) -> (TasMat, Option<CachePin>) {
        if mat.is_em() {
            return (mat, None);
        }
        let bytes = mat
            .nrows()
            .saturating_mul(mat.ncols() as u64)
            .saturating_mul(mat.dtype().size() as u64);
        if let Some(pin) = self.inner.governor.try_pin(bytes) {
            return (mat, Some(pin));
        }
        match &self.inner.safs {
            Some(safs) => {
                self.inner.governor.note_spill();
                (mat.to_em(safs), None)
            }
            // Nowhere to spill: keep it in memory and record the
            // overcommit.
            None => {
                let pin = self.inner.governor.force_pin(bytes);
                (mat, Some(pin))
            }
        }
    }
}

impl std::fmt::Debug for FlashCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlashCtx")
            .field("cfg", &self.inner.cfg)
            .field("safs", &self.inner.safs.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let ctx = FlashCtx::in_memory();
        assert!(ctx.cfg().nthreads >= 1);
        assert_eq!(ctx.cfg().mode, ExecMode::CacheFuse);
        assert_eq!(ctx.cfg().storage, StorageClass::InMem);
        assert!(ctx.safs().is_none());
    }

    #[test]
    fn mode_and_storage_overrides() {
        let ctx = FlashCtx::in_memory();
        let eager = ctx.with_mode(ExecMode::Eager);
        assert_eq!(eager.cfg().mode, ExecMode::Eager);
        // original untouched
        assert_eq!(ctx.cfg().mode, ExecMode::CacheFuse);
    }

    #[test]
    #[should_panic]
    fn em_storage_without_safs_panics() {
        let cfg = CtxConfig { storage: StorageClass::Em, ..CtxConfig::default() };
        let _ = FlashCtx::with_config(cfg, None);
    }
}
