//! The FlashR execution context: threads, engine mode, partitioning,
//! simulated NUMA topology and the optional SSD array.

use crate::part::Partitioner;
use crate::stats::ExecStats;
use crate::trace::{ProfileReport, TraceLevel, Tracer};
use flashr_safs::{Safs, SafsConfig, SafsResult};
use std::sync::Arc;

/// How DAGs are materialized — exactly the three configurations the
/// paper's Figure 10 ablates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// "base": every operation materialized separately, one full pass per
    /// operation (Spark-style).
    Eager,
    /// "+mem-fuse": one pass over I/O partitions, whole-partition
    /// intermediates (fused in memory, not in cache).
    MemFuse,
    /// "+cache-fuse" (default): Pcache partitioning with depth-first
    /// chaining through the CPU cache.
    CacheFuse,
}

/// Where materialized matrices are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageClass {
    /// NUMA-tagged memory chunks.
    InMem,
    /// The SSD array (requires a [`Safs`] runtime on the context).
    Em,
}

/// Tunables for a [`FlashCtx`].
#[derive(Debug, Clone)]
pub struct CtxConfig {
    /// Worker threads for materialization.
    pub nthreads: usize,
    /// Engine mode (Fig. 10 ablation axis).
    pub mode: ExecMode,
    /// Per-matrix Pcache budget in bytes (sized against L2).
    pub pcache_bytes: usize,
    /// Rows per I/O partition (power of two).
    pub rows_per_part: u64,
    /// Simulated NUMA nodes.
    pub numa_nodes: usize,
    /// Default placement of materialized tall matrices.
    pub storage: StorageClass,
    /// Placement of `set.cache` byproducts (the paper caches reused
    /// vectors in memory by default but supports caching on SSDs).
    pub cache_storage: StorageClass,
    /// Tracing level (defaults to the `FLASHR_TRACE` environment
    /// variable; off when unset).
    pub trace: TraceLevel,
    /// Whether the static analyzer's DAG rewrites (CSE, cast/cbind
    /// collapsing) are applied before execution. Verification and lints
    /// always run; disabling this executes the original DAG — the A/B
    /// knob for measuring what the rewrite saves.
    pub optimize: bool,
}

impl Default for CtxConfig {
    fn default() -> Self {
        CtxConfig {
            nthreads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            mode: ExecMode::CacheFuse,
            pcache_bytes: 256 * 1024,
            rows_per_part: Partitioner::DEFAULT_ROWS,
            numa_nodes: 2,
            storage: StorageClass::InMem,
            cache_storage: StorageClass::InMem,
            trace: TraceLevel::from_env(),
            optimize: true,
        }
    }
}

/// A FlashR session. Cheap to clone (shared internals).
#[derive(Clone)]
pub struct FlashCtx {
    inner: Arc<CtxInner>,
}

struct CtxInner {
    cfg: CtxConfig,
    safs: Option<Safs>,
    stats: ExecStats,
    tracer: Tracer,
}

impl FlashCtx {
    /// An in-memory context with default settings.
    pub fn in_memory() -> FlashCtx {
        FlashCtx::with_config(CtxConfig::default(), None)
    }

    /// A context backed by an SSD array; materialized matrices default to
    /// external memory.
    pub fn on_ssds(safs_cfg: SafsConfig) -> SafsResult<FlashCtx> {
        let safs = Safs::open(safs_cfg)?;
        let cfg = CtxConfig { storage: StorageClass::Em, ..CtxConfig::default() };
        Ok(FlashCtx::with_config(cfg, Some(safs)))
    }

    /// Full control.
    pub fn with_config(cfg: CtxConfig, safs: Option<Safs>) -> FlashCtx {
        assert!(cfg.nthreads >= 1, "need at least one worker thread");
        assert!(cfg.numa_nodes >= 1, "need at least one NUMA node");
        if cfg.storage == StorageClass::Em || cfg.cache_storage == StorageClass::Em {
            assert!(safs.is_some(), "EM storage requires a SAFS runtime");
        }
        let tracer = Tracer::new(cfg.trace);
        FlashCtx { inner: Arc::new(CtxInner { cfg, safs, stats: ExecStats::default(), tracer }) }
    }

    /// The configuration.
    pub fn cfg(&self) -> &CtxConfig {
        &self.inner.cfg
    }

    /// The partitioner every matrix in this context uses.
    pub fn parter(&self) -> Partitioner {
        Partitioner::new(self.inner.cfg.rows_per_part)
    }

    /// The SSD array, if any.
    pub fn safs(&self) -> Option<&Safs> {
        self.inner.safs.as_ref()
    }

    /// Engine statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.inner.stats
    }

    /// The trace collector (shared by all clones of this context).
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Everything this context observed — engine counters, SAFS I/O
    /// counters and latency histograms (if on SSDs), and the recorded
    /// pass profiles — ready for [`ProfileReport::to_json`].
    pub fn profile_report(&self) -> ProfileReport {
        ProfileReport {
            exec: self.inner.stats.snapshot(),
            io: self.inner.safs.as_ref().map(|s| s.stats_snapshot()),
            passes: self.inner.tracer.passes(),
            dropped_passes: self.inner.tracer.dropped_passes(),
        }
    }

    /// A copy of this context with a different engine mode.
    pub fn with_mode(&self, mode: ExecMode) -> FlashCtx {
        let cfg = CtxConfig { mode, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// A copy of this context with a different default storage class.
    pub fn with_storage(&self, storage: StorageClass) -> FlashCtx {
        let cfg = CtxConfig { storage, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// A copy of this context with a different trace level (fresh
    /// tracer; the original's recordings are untouched).
    pub fn with_trace(&self, trace: TraceLevel) -> FlashCtx {
        let cfg = CtxConfig { trace, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }

    /// A copy of this context with the analyzer's DAG rewrites switched
    /// on or off (verification and lints always run).
    pub fn with_optimize(&self, optimize: bool) -> FlashCtx {
        let cfg = CtxConfig { optimize, ..self.inner.cfg.clone() };
        FlashCtx::with_config(cfg, self.inner.safs.clone())
    }
}

impl std::fmt::Debug for FlashCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlashCtx")
            .field("cfg", &self.inner.cfg)
            .field("safs", &self.inner.safs.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let ctx = FlashCtx::in_memory();
        assert!(ctx.cfg().nthreads >= 1);
        assert_eq!(ctx.cfg().mode, ExecMode::CacheFuse);
        assert_eq!(ctx.cfg().storage, StorageClass::InMem);
        assert!(ctx.safs().is_none());
    }

    #[test]
    fn mode_and_storage_overrides() {
        let ctx = FlashCtx::in_memory();
        let eager = ctx.with_mode(ExecMode::Eager);
        assert_eq!(eager.cfg().mode, ExecMode::Eager);
        // original untouched
        assert_eq!(ctx.cfg().mode, ExecMode::CacheFuse);
    }

    #[test]
    #[should_panic]
    fn em_storage_without_safs_panics() {
        let cfg = CtxConfig { storage: StorageClass::Em, ..CtxConfig::default() };
        let _ = FlashCtx::with_config(cfg, None);
    }
}
