//! Matrix import/export (paper Table 3: `load.dense` and friends).
//!
//! * [`read_csv`] / [`write_csv`] — the paper's `load.dense` reads dense
//!   matrices from text files; rows are lines, columns are separated by
//!   `sep`.
//! * [`save_binary`] / [`load_binary`] — a raw binary container (small
//!   header + column-major partitions) for fast persistence of f64
//!   matrices.

use crate::fm::FM;
use crate::mat::TasMat;
use crate::session::FlashCtx;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Read a dense f64 matrix from a delimited text file.
pub fn read_csv(ctx: &FlashCtx, path: impl AsRef<Path>, sep: char) -> std::io::Result<FM> {
    let f = File::open(path.as_ref())?;
    let reader = BufReader::new(f);
    let mut data: Vec<f64> = Vec::new();
    let mut ncols: Option<usize> = None;
    let mut line_buf = String::new();
    let mut reader = reader;
    while {
        line_buf.clear();
        reader.read_line(&mut line_buf)? > 0
    } {
        let line = line_buf.trim();
        if line.is_empty() {
            continue;
        }
        let mut n = 0;
        for tok in line.split(sep) {
            let v: f64 = tok.trim().parse().map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad number '{tok}': {e}"))
            })?;
            data.push(v);
            n += 1;
        }
        match ncols {
            None => ncols = Some(n),
            Some(c) => {
                if c != n {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("ragged rows: {c} vs {n}"),
                    ));
                }
            }
        }
    }
    let ncols = ncols.ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "empty matrix file")
    })?;
    let nrows = (data.len() / ncols) as u64;
    Ok(FM::from_row_major(ctx, nrows, ncols, &data))
}

/// Write a matrix as delimited text.
pub fn write_csv(ctx: &FlashCtx, fm: &FM, path: impl AsRef<Path>, sep: char) -> std::io::Result<()> {
    let d = fm.to_dense(ctx);
    let f = File::create(path.as_ref())?;
    let mut w = BufWriter::new(f);
    for r in 0..d.rows() {
        for c in 0..d.cols() {
            if c > 0 {
                write!(w, "{sep}")?;
            }
            write!(w, "{}", d.at(r, c))?;
        }
        writeln!(w)?;
    }
    w.flush()
}

const MAGIC: &[u8; 8] = b"FLASHR01";

/// Persist an f64 matrix to a raw binary file (header + column-major
/// partition payloads in partition order).
pub fn save_binary(ctx: &FlashCtx, fm: &FM, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mat = fm.materialize(ctx).tall_mat(ctx);
    let mat = if mat.dtype() == crate::dtype::DType::F64 {
        mat
    } else {
        fm.cast(crate::dtype::DType::F64).materialize(ctx).tall_mat(ctx)
    };
    let f = File::create(path.as_ref())?;
    let mut w = BufWriter::new(f);
    w.write_all(MAGIC)?;
    w.write_all(&mat.nrows().to_le_bytes())?;
    w.write_all(&(mat.ncols() as u64).to_le_bytes())?;
    w.write_all(&mat.parter().rows_per_part().to_le_bytes())?;
    let mut pool = crate::chunk::BufPool::new();
    for part in 0..mat.nparts() {
        let rows = mat.parter().part_rows(part, mat.nrows());
        let buf = mat.read_part(part);
        // Normalize to column-major on disk.
        let chunk = mat.pcache_chunk(&buf, part, 0, rows, &mut pool);
        w.write_all(chunk.as_bytes())?;
    }
    w.flush()
}

/// Load a matrix written by [`save_binary`]. The file's partitioning is
/// preserved, so it must match the context's `rows_per_part` to join DAGs
/// with context-created matrices.
pub fn load_binary(ctx: &FlashCtx, path: impl AsRef<Path>) -> std::io::Result<FM> {
    let f = File::open(path.as_ref())?;
    let mut r = BufReader::new(f);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "not a FlashR binary matrix"));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let nrows = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u64buf)?;
    let ncols = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u64buf)?;
    let rows_per_part = u64::from_le_bytes(u64buf);
    let parter = crate::part::Partitioner::new(rows_per_part);
    assert_eq!(
        parter,
        ctx.parter(),
        "file partitioning ({rows_per_part} rows) differs from the context"
    );
    let nparts = parter.nparts(nrows);
    let mut parts = Vec::with_capacity(nparts as usize);
    for part in 0..nparts {
        let rows = parter.part_rows(part, nrows);
        let mut buf = flashr_safs::IoBuf::zeroed(rows * ncols * 8);
        r.read_exact(buf.as_mut_bytes())?;
        parts.push(std::sync::Arc::new(buf));
    }
    let mat = TasMat::assemble_in_mem(
        nrows,
        ncols,
        crate::dtype::DType::F64,
        crate::mat::Layout::ColMajor,
        parter,
        parts,
    );
    Ok(FM::from_tas(mat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 64, ..Default::default() }, None)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("flashr-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn csv_roundtrip() {
        let ctx = ctx();
        let x = FM::runif(&ctx, 100, 3, -5.0, 5.0, 3);
        let path = tmp("roundtrip.csv");
        write_csv(&ctx, &x, &path, ',').unwrap();
        let y = read_csv(&ctx, &path, ',').unwrap();
        assert_eq!(y.nrow(), 100);
        assert_eq!(y.ncol(), 3);
        let diff = (&x - &y).abs().max_all().value(&ctx);
        assert!(diff < 1e-12, "diff={diff}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let ctx = ctx();
        let path = tmp("ragged.csv");
        std::fs::write(&path, "1,2,3\n4,5\n").unwrap();
        assert!(read_csv(&ctx, &path, ',').is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn csv_rejects_garbage() {
        let ctx = ctx();
        let path = tmp("garbage.csv");
        std::fs::write(&path, "1,two,3\n").unwrap();
        assert!(read_csv(&ctx, &path, ',').is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn binary_roundtrip() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 300, 4, 1.0, 2.0, 9);
        let path = tmp("roundtrip.bin");
        save_binary(&ctx, &x, &path).unwrap();
        let y = load_binary(&ctx, &path).unwrap();
        assert_eq!(y.nrow(), 300);
        let diff = (&x - &y).abs().max_all().value(&ctx);
        assert_eq!(diff, 0.0, "binary roundtrip must be exact");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let ctx = ctx();
        let path = tmp("bad.bin");
        std::fs::write(&path, b"NOTMAGIC00000000").unwrap();
        assert!(load_binary(&ctx, &path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
