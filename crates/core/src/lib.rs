//! # flashr-core
//!
//! A Rust reproduction of the FlashR engine (Zheng et al., PPoPP'18):
//! a matrix-oriented programming framework that evaluates matrix
//! operations lazily, fuses whole operation DAGs into a single parallel
//! pass over the data, performs two-level (I/O partition / processor-cache
//! partition) partitioning, and runs either in memory or out-of-core
//! against an SSD array.
//!
//! Layering (bottom up):
//!
//! * [`chunk`], [`part`], [`mat`] — tall-and-skinny matrices, I/O
//!   partitions and Pcache chunks (paper §3.2);
//! * [`ops`] — the GenOp kernels (paper Table 1);
//! * [`dag`] — virtual matrices and lazy evaluation (paper §3.4);
//! * [`analysis`] — static plan verification, CSE rewriting and fusion
//!   lints over the pending DAG, run before any partition is read;
//! * [`exec`] — the fused / mem-fuse / eager materialization engines
//!   (paper §3.5 and the Figure 10 ablation);
//! * [`fm`] — the user-facing `FM` matrix type mirroring the R `base`
//!   functions FlashR overrides (paper Tables 2 and 3);
//! * [`block`] — block matrices (paper §3.2.2).
//!
//! ```
//! use flashr_core::fm::FM;
//! use flashr_core::session::FlashCtx;
//!
//! let ctx = FlashCtx::in_memory();
//! let x = FM::runif(&ctx, 10_000, 4, 0.0, 1.0, 42);
//! let col_means = x.col_means().to_vec(&ctx); // lazy sink → one fused pass
//! assert!(col_means.iter().all(|&m| (m - 0.5).abs() < 0.05));
//! ```

pub mod analysis;
pub mod block;
pub mod chunk;
pub mod dag;
pub mod dtype;
pub mod element;
pub mod exec;
pub mod fm;
pub mod gen;
pub mod io;
pub mod mat;
pub mod metrics;
pub mod obs;
pub mod ops;
pub mod part;
pub mod session;
pub mod stats;
pub mod trace;

pub use analysis::{AnalysisReport, FootprintEstimate, Lint, PlanError, PlanErrorKind};
pub use dtype::{DType, Scalar};
pub use fm::FM;
pub use metrics::{FlightRecorder, MetricsHub, MetricsServer};
pub use session::{CtxConfig, ExecMode, FlashCtx, StorageClass};
pub use trace::{CriticalPath, PassBreakdown, PassProfile, ProfileReport, Timeline, TraceLevel};
