//! Tall-and-skinny (TAS) matrices — the physical storage format (§3.2.1).
//!
//! A [`TasMat`] is partitioned on its long dimension into I/O partitions
//! whose elements are stored contiguously regardless of the element layout
//! inside the partition. The store is either NUMA-tagged in-memory
//! partition buffers or a striped SAFS file on the SSD array. Wide
//! matrices are *views*: transposition never copies (handled a level up,
//! in the `fm` API).

use crate::chunk::{BufPool, Chunk, PartBufPool};
use crate::dtype::{DType, Scalar};
use crate::element::Element;
use crate::part::Partitioner;
use flashr_safs::{CachedFetch, IoBuf, IoTicket, Safs, SafsFile};
use std::sync::Arc;

/// Element order inside one I/O partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Each column of the partition is contiguous (preferred; vectorizes).
    ColMajor,
    /// Each row of the partition is contiguous (how row-wise loaders
    /// produce data).
    RowMajor,
}

/// Where a matrix's partitions live.
#[derive(Clone)]
pub enum Store {
    /// One buffer per I/O partition, tagged round-robin across simulated
    /// NUMA nodes (node = partition index mod #nodes).
    InMem(Arc<Vec<Arc<IoBuf>>>),
    /// A striped file on the SSD array.
    Em(SafsFile),
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Store::InMem(parts) => write!(f, "InMem({} parts)", parts.len()),
            Store::Em(file) => write!(f, "Em({})", file.name()),
        }
    }
}

/// A materialized tall-and-skinny matrix.
#[derive(Debug, Clone)]
pub struct TasMat {
    inner: Arc<TasInner>,
}

#[derive(Debug)]
struct TasInner {
    nrows: u64,
    ncols: usize,
    dtype: DType,
    layout: Layout,
    parter: Partitioner,
    store: Store,
    /// When set, uniquely-owned in-memory partition buffers return here
    /// on drop so the next pass's tall outputs reuse warm memory instead
    /// of paying the allocator (see [`PartBufPool`]).
    recycle: Option<Arc<PartBufPool>>,
}

impl Drop for TasInner {
    fn drop(&mut self) {
        let Some(pool) = self.recycle.take() else { return };
        if let Store::InMem(parts) = &mut self.store {
            let arc = std::mem::replace(parts, Arc::new(Vec::new()));
            // Both `try_unwrap`s fail whenever anything else still holds
            // the data (cloned stores, shared chunks, caller-held part
            // buffers) — recycling never invalidates a live reference.
            if let Ok(vec) = Arc::try_unwrap(arc) {
                for p in vec {
                    if let Ok(buf) = Arc::try_unwrap(p) {
                        pool.put(buf);
                    }
                }
            }
        }
    }
}

/// A partition read that may still be in flight.
pub enum PartFetch {
    /// In-memory partition, available immediately.
    Ready(Arc<IoBuf>),
    /// External-memory partition, pending on the I/O engine.
    Pending(IoTicket),
    /// External-memory partition routed through the SAFS page cache
    /// (hit, coalesced miss or readahead adoption).
    Cached(CachedFetch),
}

impl PartFetch {
    /// Block until the partition bytes are available.
    pub fn wait(self) -> Arc<IoBuf> {
        match self {
            PartFetch::Ready(buf) => buf,
            PartFetch::Pending(ticket) => Arc::new(ticket.wait().expect("partition read failed")),
            PartFetch::Cached(fetch) => fetch.wait().expect("partition read failed"),
        }
    }
}

impl TasMat {
    /// Assemble an in-memory matrix from per-partition buffers (used by
    /// the materializer). Buffer `i` must hold partition `i` in `layout`
    /// order with exactly `part_rows(i) × ncols` elements.
    pub fn assemble_in_mem(
        nrows: u64,
        ncols: usize,
        dtype: DType,
        layout: Layout,
        parter: Partitioner,
        parts: Vec<Arc<IoBuf>>,
    ) -> TasMat {
        TasMat::assemble_in_mem_pooled(nrows, ncols, dtype, layout, parter, parts, None)
    }

    /// [`Self::assemble_in_mem`] with a recycle hook: when the matrix
    /// drops while holding the last reference to its partition buffers,
    /// they return to `recycle` for the next pass's tall outputs.
    pub fn assemble_in_mem_pooled(
        nrows: u64,
        ncols: usize,
        dtype: DType,
        layout: Layout,
        parter: Partitioner,
        parts: Vec<Arc<IoBuf>>,
        recycle: Option<Arc<PartBufPool>>,
    ) -> TasMat {
        assert_eq!(parts.len() as u64, parter.nparts(nrows), "partition count mismatch");
        for (i, p) in parts.iter().enumerate() {
            let rows = parter.part_rows(i as u64, nrows);
            assert_eq!(p.len(), rows * ncols * dtype.size(), "partition {i} byte size mismatch");
        }
        TasMat {
            inner: Arc::new(TasInner {
                nrows,
                ncols,
                dtype,
                layout,
                parter,
                store: Store::InMem(Arc::new(parts)),
                recycle,
            }),
        }
    }

    /// Wrap an existing SAFS file as a matrix (used by the materializer
    /// and by `load`-style readers).
    pub fn from_em_file(
        nrows: u64,
        ncols: usize,
        dtype: DType,
        layout: Layout,
        parter: Partitioner,
        file: SafsFile,
    ) -> TasMat {
        let expect = nrows * ncols as u64 * dtype.size() as u64;
        assert_eq!(file.total_bytes(), expect, "file size does not match matrix shape");
        TasMat {
            inner: Arc::new(TasInner {
                nrows,
                ncols,
                dtype,
                layout,
                parter,
                store: Store::Em(file),
                recycle: None,
            }),
        }
    }

    /// Build an in-memory matrix from a generator (row, col) → T.
    pub fn from_fn<T: Element>(
        nrows: u64,
        ncols: usize,
        parter: Partitioner,
        mut f: impl FnMut(u64, usize) -> T,
    ) -> TasMat {
        let nparts = parter.nparts(nrows);
        let mut parts = Vec::with_capacity(nparts as usize);
        for part in 0..nparts {
            let (r0, r1) = parter.part_range(part, nrows);
            let rows = (r1 - r0) as usize;
            let mut buf = IoBuf::zeroed(rows * ncols * T::DTYPE.size());
            {
                let s = buf.typed_mut::<T>();
                for c in 0..ncols {
                    for r in 0..rows {
                        s[c * rows + r] = f(r0 + r as u64, c);
                    }
                }
            }
            parts.push(Arc::new(buf));
        }
        TasMat::assemble_in_mem(nrows, ncols, T::DTYPE, Layout::ColMajor, parter, parts)
    }

    /// Build an in-memory matrix from a column-major element vector.
    pub fn from_col_major<T: Element>(
        nrows: u64,
        ncols: usize,
        parter: Partitioner,
        data: &[T],
    ) -> TasMat {
        assert_eq!(data.len() as u64, nrows * ncols as u64, "element count mismatch");
        TasMat::from_fn(nrows, ncols, parter, |r, c| data[c * nrows as usize + r as usize])
    }

    /// Build an in-memory matrix from a row-major element vector,
    /// *preserving* the row-major partition layout (exercises the
    /// engine's row-major leaf path).
    pub fn from_row_major<T: Element>(
        nrows: u64,
        ncols: usize,
        parter: Partitioner,
        data: &[T],
    ) -> TasMat {
        assert_eq!(data.len() as u64, nrows * ncols as u64, "element count mismatch");
        let nparts = parter.nparts(nrows);
        let mut parts = Vec::with_capacity(nparts as usize);
        for part in 0..nparts {
            let (r0, r1) = parter.part_range(part, nrows);
            let rows = (r1 - r0) as usize;
            let mut buf = IoBuf::zeroed(rows * ncols * T::DTYPE.size());
            {
                let s = buf.typed_mut::<T>();
                s.copy_from_slice(&data[r0 as usize * ncols..r1 as usize * ncols]);
            }
            parts.push(Arc::new(buf));
        }
        TasMat::assemble_in_mem(nrows, ncols, T::DTYPE, Layout::RowMajor, parter, parts)
    }

    /// Rows.
    pub fn nrows(&self) -> u64 {
        self.inner.nrows
    }

    /// Columns.
    pub fn ncols(&self) -> usize {
        self.inner.ncols
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.inner.dtype
    }

    /// Partition-internal element order.
    pub fn layout(&self) -> Layout {
        self.inner.layout
    }

    /// The partitioning this matrix was built with.
    pub fn parter(&self) -> Partitioner {
        self.inner.parter
    }

    /// Number of I/O partitions.
    pub fn nparts(&self) -> u64 {
        self.inner.parter.nparts(self.inner.nrows)
    }

    /// Whether the matrix lives on the SSD array.
    pub fn is_em(&self) -> bool {
        matches!(self.inner.store, Store::Em(_))
    }

    /// The backing store.
    pub fn store(&self) -> &Store {
        &self.inner.store
    }

    /// Begin fetching partition `part` (asynchronous for EM stores).
    pub fn fetch_part(&self, part: u64) -> PartFetch {
        match &self.inner.store {
            Store::InMem(parts) => PartFetch::Ready(parts[part as usize].clone()),
            Store::Em(file) => {
                match file.fetch_part_cached(part).expect("partition read submit failed") {
                    // No cache installed (or bypassed): the plain async path.
                    CachedFetch::Direct(ticket) => PartFetch::Pending(ticket),
                    fetch => PartFetch::Cached(fetch),
                }
            }
        }
    }

    /// Synchronously read partition `part`.
    pub fn read_part(&self, part: u64) -> Arc<IoBuf> {
        self.fetch_part(part).wait()
    }

    /// Strided in-place view parameters for the Pcache chunk `[r0, r1)`
    /// of partition `part`: `(col_stride_rows, row_off)` into the raw
    /// partition buffer. `Some` only for column-major stores — chain
    /// kernels use this to read the leaf directly (no chunk copy);
    /// row-major callers fall back to [`Self::pcache_chunk`].
    pub fn pcache_stride(&self, part: u64, r0: usize, r1: usize) -> Option<(usize, usize)> {
        if !matches!(self.inner.layout, Layout::ColMajor) {
            return None;
        }
        let part_rows = self.inner.parter.part_rows(part, self.inner.nrows);
        assert!(r0 <= r1 && r1 <= part_rows, "pcache range out of partition");
        Some((part_rows, r0))
    }

    /// Extract the Pcache chunk `[r0, r1)` (partition-local rows) of
    /// partition `part` from its raw buffer, converting to column-major.
    ///
    /// Zero-copy when the range spans a whole column-major partition.
    pub fn pcache_chunk(
        &self,
        part_buf: &Arc<IoBuf>,
        part: u64,
        r0: usize,
        r1: usize,
        pool: &mut BufPool,
    ) -> Chunk {
        let part_rows = self.inner.parter.part_rows(part, self.inner.nrows);
        assert!(r0 <= r1 && r1 <= part_rows, "pcache range out of partition");
        let rows = r1 - r0;
        let ncols = self.inner.ncols;
        let dtype = self.inner.dtype;
        match self.inner.layout {
            Layout::ColMajor => {
                if r0 == 0 && r1 == part_rows {
                    return Chunk::shared(part_buf.clone(), dtype, rows, ncols);
                }
                let mut out = Chunk::alloc(dtype, rows, ncols, pool);
                crate::dispatch!(dtype, T, {
                    let src = part_buf.typed::<T>();
                    let dst = out.slice_mut::<T>();
                    for c in 0..ncols {
                        dst[c * rows..(c + 1) * rows]
                            .copy_from_slice(&src[c * part_rows + r0..c * part_rows + r1]);
                    }
                });
                out
            }
            Layout::RowMajor => {
                let mut out = Chunk::alloc(dtype, rows, ncols, pool);
                crate::dispatch!(dtype, T, {
                    let src = part_buf.typed::<T>();
                    let dst = out.slice_mut::<T>();
                    for (ri, r) in (r0..r1).enumerate() {
                        let row = &src[r * ncols..(r + 1) * ncols];
                        for (c, &v) in row.iter().enumerate() {
                            dst[c * rows + ri] = v;
                        }
                    }
                });
                out
            }
        }
    }

    /// Random element access (test/debug convenience; reads the whole
    /// partition on EM stores).
    pub fn get(&self, r: u64, c: usize) -> Scalar {
        assert!(r < self.inner.nrows && c < self.inner.ncols, "index out of range");
        let part = r / self.inner.parter.rows_per_part();
        let local = (r - part * self.inner.parter.rows_per_part()) as usize;
        let buf = self.read_part(part);
        let part_rows = self.inner.parter.part_rows(part, self.inner.nrows);
        let idx = match self.inner.layout {
            Layout::ColMajor => c * part_rows + local,
            Layout::RowMajor => local * self.inner.ncols + c,
        };
        crate::dispatch!(self.inner.dtype, T, {
            let v: T = buf.typed::<T>()[idx];
            crate::chunk::scalar_of(v)
        })
    }

    /// Copy the whole matrix into a row-major f64 [`flashr_linalg::Dense`]
    /// (intended for small matrices and test assertions).
    pub fn to_dense_f64(&self) -> flashr_linalg::Dense {
        let n = self.inner.nrows as usize;
        let p = self.inner.ncols;
        let mut out = flashr_linalg::Dense::zeros(n, p);
        let mut pool = BufPool::new();
        for part in 0..self.nparts() {
            let (g0, g1) = self.inner.parter.part_range(part, self.inner.nrows);
            let buf = self.read_part(part);
            let chunk = self.pcache_chunk(&buf, part, 0, (g1 - g0) as usize, &mut pool);
            for c in 0..p {
                for r in 0..chunk.rows() {
                    out.set(g0 as usize + r, c, chunk.get_f64(r, c));
                }
            }
        }
        out
    }

    /// Copy this matrix into a fresh EM matrix on `safs`.
    pub fn to_em(&self, safs: &Safs) -> TasMat {
        let name = safs.unique_name("tas");
        let elem = self.inner.dtype.size() as u64;
        let part_bytes = self.inner.parter.rows_per_part() * self.inner.ncols as u64 * elem;
        let total = self.inner.nrows * self.inner.ncols as u64 * elem;
        let file = safs.create_bytes(&name, part_bytes, total).expect("EM matrix create failed");
        file.set_delete_on_drop(true);
        let mut pending = Vec::new();
        for part in 0..self.nparts() {
            let buf = self.read_part(part);
            pending.push(
                file.write_part_async(part, IoBuf::from_bytes(buf.as_bytes()))
                    .expect("EM write submit failed"),
            );
        }
        for t in pending {
            t.wait().expect("EM write failed");
        }
        TasMat::from_em_file(
            self.inner.nrows,
            self.inner.ncols,
            self.inner.dtype,
            self.inner.layout,
            self.inner.parter,
            file,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parter() -> Partitioner {
        Partitioner::new(64)
    }

    #[test]
    fn from_fn_and_get() {
        let m = TasMat::from_fn::<f64>(200, 3, parter(), |r, c| r as f64 * 10.0 + c as f64);
        assert_eq!(m.nparts(), 4);
        assert_eq!(m.get(0, 0).to_f64(), 0.0);
        assert_eq!(m.get(199, 2).to_f64(), 1992.0);
        assert_eq!(m.get(64, 1).to_f64(), 641.0); // first row of partition 1
    }

    #[test]
    fn row_major_and_col_major_agree() {
        let n = 150u64;
        let p = 4usize;
        let rm: Vec<i32> = (0..n as i32 * p as i32).collect();
        let a = TasMat::from_row_major::<i32>(n, p, parter(), &rm);
        let b = TasMat::from_fn::<i32>(n, p, parter(), |r, c| (r as i32) * p as i32 + c as i32);
        for r in [0u64, 1, 63, 64, 149] {
            for c in 0..p {
                assert_eq!(a.get(r, c), b.get(r, c), "({r},{c})");
            }
        }
    }

    #[test]
    fn pcache_chunk_full_partition_is_shared() {
        let m = TasMat::from_fn::<f64>(128, 2, parter(), |r, c| (r + c as u64) as f64);
        let buf = m.read_part(0);
        let mut pool = BufPool::new();
        let chunk = m.pcache_chunk(&buf, 0, 0, 64, &mut pool);
        // Shared chunk: same allocation.
        assert_eq!(chunk.as_bytes().as_ptr(), buf.as_bytes().as_ptr());
        assert_eq!(chunk.get_f64(5, 1), 6.0);
    }

    #[test]
    fn pcache_chunk_subrange_copies_correctly() {
        let m = TasMat::from_fn::<i64>(100, 3, parter(), |r, c| (r * 100 + c as u64) as i64);
        let buf = m.read_part(1); // rows 64..100
        let mut pool = BufPool::new();
        let chunk = m.pcache_chunk(&buf, 1, 10, 20, &mut pool);
        assert_eq!(chunk.rows(), 10);
        // global row 74..84
        assert_eq!(chunk.get(0, 0).to_i64(), 7400);
        assert_eq!(chunk.get(9, 2).to_i64(), 8302);
    }

    #[test]
    fn row_major_pcache_transposes() {
        let data: Vec<f32> = (0..60).map(|x| x as f32).collect();
        let m = TasMat::from_row_major::<f32>(20, 3, parter(), &data);
        let buf = m.read_part(0);
        let mut pool = BufPool::new();
        let chunk = m.pcache_chunk(&buf, 0, 5, 10, &mut pool);
        // global row 7, col 2 → data[7*3+2]=23
        assert_eq!(chunk.get_f64(2, 2), 23.0);
    }

    #[test]
    fn to_dense_roundtrip() {
        let m = TasMat::from_fn::<f64>(70, 2, parter(), |r, c| r as f64 - c as f64);
        let d = m.to_dense_f64();
        assert_eq!(d.rows(), 70);
        assert_eq!(d.at(69, 1), 68.0);
    }

    #[test]
    fn em_roundtrip() {
        let dir = std::env::temp_dir().join(format!("core-mat-em-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let safs = Safs::open(flashr_safs::SafsConfig::striped_under(dir, 3)).unwrap();
        let m = TasMat::from_fn::<f64>(300, 5, parter(), |r, c| (r * 7 + c as u64) as f64);
        let em = m.to_em(&safs);
        assert!(em.is_em());
        assert_eq!(em.nparts(), 5);
        for &(r, c) in &[(0u64, 0usize), (63, 4), (64, 0), (299, 3)] {
            assert_eq!(em.get(r, c), m.get(r, c), "({r},{c})");
        }
    }
}
