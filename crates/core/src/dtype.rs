//! Element types of FlashR matrices.
//!
//! FlashR matrices carry a runtime dtype tag; kernels are monomorphized
//! per element type and dispatched through the `dispatch!` macro.
//! Mixed-dtype binary operations auto-insert casts following R-like
//! promotion rules, so every arithmetic kernel is `T × T → T`.

/// Runtime element type of a matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 8-bit unsigned — R's `logical` and the output of comparison ops.
    U8,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer — R's widened integer accumulator.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float — R's `numeric`.
    F64,
}

impl DType {
    /// Size of one element in bytes.
    pub const fn size(self) -> usize {
        match self {
            DType::U8 => 1,
            DType::I32 | DType::F32 => 4,
            DType::I64 | DType::F64 => 8,
        }
    }

    /// Whether this is a floating-point type.
    pub const fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// Position in the promotion ladder `U8 < I32 < I64 < F32 < F64`.
    const fn rank(self) -> u8 {
        match self {
            DType::U8 => 0,
            DType::I32 => 1,
            DType::I64 => 2,
            DType::F32 => 3,
            DType::F64 => 4,
        }
    }

    /// The common type two operands promote to.
    pub fn promote(a: DType, b: DType) -> DType {
        if a.rank() >= b.rank() {
            a
        } else {
            b
        }
    }

    /// Accumulator type used by summing aggregations over this dtype
    /// (integers widen to I64, floats accumulate at F64 as R does).
    pub fn sum_dtype(self) -> DType {
        match self {
            DType::U8 | DType::I32 | DType::I64 => DType::I64,
            DType::F32 | DType::F64 => DType::F64,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DType::U8 => "u8",
            DType::I32 => "i32",
            DType::I64 => "i64",
            DType::F32 => "f32",
            DType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A dynamically typed scalar (used for fill values, scalar operands and
/// scalar aggregation results).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    U8(u8),
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
}

impl Scalar {
    /// The dtype this scalar carries.
    pub fn dtype(self) -> DType {
        match self {
            Scalar::U8(_) => DType::U8,
            Scalar::I32(_) => DType::I32,
            Scalar::I64(_) => DType::I64,
            Scalar::F32(_) => DType::F32,
            Scalar::F64(_) => DType::F64,
        }
    }

    /// Lossy conversion to f64 (exact for everything but huge i64).
    pub fn to_f64(self) -> f64 {
        match self {
            Scalar::U8(v) => v as f64,
            Scalar::I32(v) => v as f64,
            Scalar::I64(v) => v as f64,
            Scalar::F32(v) => v as f64,
            Scalar::F64(v) => v,
        }
    }

    /// Conversion to i64 (floats truncate).
    pub fn to_i64(self) -> i64 {
        match self {
            Scalar::U8(v) => v as i64,
            Scalar::I32(v) => v as i64,
            Scalar::I64(v) => v,
            Scalar::F32(v) => v as i64,
            Scalar::F64(v) => v as i64,
        }
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::F64(v)
    }
}
impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::I64(v)
    }
}
impl From<i32> for Scalar {
    fn from(v: i32) -> Self {
        Scalar::I32(v)
    }
}
impl From<u8> for Scalar {
    fn from(v: u8) -> Self {
        Scalar::U8(v)
    }
}
impl From<f32> for Scalar {
    fn from(v: f32) -> Self {
        Scalar::F32(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::U8.size(), 1);
        assert_eq!(DType::I32.size(), 4);
        assert_eq!(DType::I64.size(), 8);
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::F64.size(), 8);
    }

    #[test]
    fn promotion_ladder() {
        use DType::*;
        assert_eq!(DType::promote(U8, I32), I32);
        assert_eq!(DType::promote(I64, I32), I64);
        assert_eq!(DType::promote(I64, F32), F32);
        assert_eq!(DType::promote(F32, F64), F64);
        assert_eq!(DType::promote(F64, U8), F64);
        for t in [U8, I32, I64, F32, F64] {
            assert_eq!(DType::promote(t, t), t);
        }
    }

    #[test]
    fn sum_dtype_widens() {
        assert_eq!(DType::U8.sum_dtype(), DType::I64);
        assert_eq!(DType::I32.sum_dtype(), DType::I64);
        assert_eq!(DType::F32.sum_dtype(), DType::F64);
        assert_eq!(DType::F64.sum_dtype(), DType::F64);
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::from(2.5f64).to_f64(), 2.5);
        assert_eq!(Scalar::from(7i64).to_i64(), 7);
        assert_eq!(Scalar::F64(-1.9).to_i64(), -1);
        assert_eq!(Scalar::U8(3).dtype(), DType::U8);
    }
}
