//! Lazily generated matrices (`runif.matrix`, `rnorm.matrix`, `seq`,
//! constant fill).
//!
//! FlashR creates random matrices lazily like every other operation; only
//! when a DAG materializes does data exist. We use a *counter-based*
//! generator — each element is a deterministic hash of
//! `(seed, row, col)` — so any Pcache chunk can be produced independently,
//! in any order, on any thread, with a bit-identical result. This is what
//! makes in-memory and external-memory runs of the same seeded workload
//! exactly comparable.

use crate::chunk::{BufPool, Chunk};
use crate::dtype::DType;
use crate::element::Element;

/// Specification of a generated (virtual leaf) matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenSpec {
    /// Uniform on `[lo, hi)`.
    Runif { seed: u64, lo: f64, hi: f64 },
    /// Normal with the given mean and standard deviation.
    Rnorm { seed: u64, mean: f64, sd: f64 },
    /// `start + row * step` down every column (R's `seq`, columnwise).
    Seq { start: f64, step: f64 },
    /// Constant fill.
    Const { value: f64 },
}

/// splitmix64 finalizer: statistically strong 64-bit mixing.
#[inline(always)]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1) from a counter (single splitmix finalization of
/// a position key — fast and statistically fine for workload synthesis).
#[inline(always)]
fn unit_f64(seed: u64, row: u64, col: u64, stream: u64) -> f64 {
    let key = seed
        ^ row.wrapping_mul(0x2545_F491_4F6C_DD1D)
        ^ col.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ stream.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    let h = mix(key);
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl GenSpec {
    /// The natural dtype of this generator's output.
    pub fn dtype(&self) -> DType {
        DType::F64
    }

    /// Element (global `row`, `col`) of the generated matrix.
    pub fn value_at(&self, row: u64, col: usize) -> f64 {
        match *self {
            GenSpec::Runif { seed, lo, hi } => lo + (hi - lo) * unit_f64(seed, row, col as u64, 0),
            GenSpec::Rnorm { seed, mean, sd } => {
                // Box–Muller from two counter-based uniforms keyed by the
                // row *pair*: even rows take the cosine branch, odd rows
                // the sine branch, so each (ln, sqrt) serves two values
                // while every element stays a pure function of (row, col).
                let pair = row >> 1;
                let u1 = unit_f64(seed, pair, col as u64, 1).max(f64::MIN_POSITIVE);
                let u2 = unit_f64(seed, pair, col as u64, 2);
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = std::f64::consts::TAU * u2;
                let z = if row & 1 == 0 { r * theta.cos() } else { r * theta.sin() };
                mean + sd * z
            }
            GenSpec::Seq { start, step } => start + row as f64 * step,
            GenSpec::Const { value } => value,
        }
    }

    /// Fill a column-major chunk covering global rows
    /// `[row0, row0 + rows)` and all `cols` columns.
    pub fn fill_chunk(&self, row0: u64, rows: usize, cols: usize, pool: &mut BufPool) -> Chunk {
        let mut out = Chunk::alloc(DType::F64, rows, cols, pool);
        let s = out.slice_mut::<f64>();
        match *self {
            GenSpec::Const { value } => s.fill(value),
            GenSpec::Seq { start, step } => {
                for c in 0..cols {
                    for r in 0..rows {
                        s[c * rows + r] = start + (row0 + r as u64) as f64 * step;
                    }
                }
            }
            _ => {
                for c in 0..cols {
                    for r in 0..rows {
                        s[c * rows + r] = self.value_at(row0 + r as u64, c);
                    }
                }
            }
        }
        out
    }

    /// Fill as a typed chunk of `dtype` (values cast from f64).
    pub fn fill_chunk_as(
        &self,
        dtype: DType,
        row0: u64,
        rows: usize,
        cols: usize,
        pool: &mut BufPool,
    ) -> Chunk {
        if dtype == DType::F64 {
            return self.fill_chunk(row0, rows, cols, pool);
        }
        let mut out = Chunk::alloc(dtype, rows, cols, pool);
        crate::dispatch!(dtype, T, {
            let s = out.slice_mut::<T>();
            for c in 0..cols {
                for r in 0..rows {
                    s[c * rows + r] = T::from_f64(self.value_at(row0 + r as u64, c));
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runif_range_and_determinism() {
        let g = GenSpec::Runif { seed: 7, lo: -2.0, hi: 3.0 };
        for r in 0..1000u64 {
            let v = g.value_at(r, 0);
            assert!((-2.0..3.0).contains(&v));
            assert_eq!(v, g.value_at(r, 0), "not deterministic");
        }
    }

    #[test]
    fn runif_mean_is_plausible() {
        let g = GenSpec::Runif { seed: 42, lo: 0.0, hi: 1.0 };
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|r| g.value_at(r, 3)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn rnorm_moments_are_plausible() {
        let g = GenSpec::Rnorm { seed: 9, mean: 2.0, sd: 3.0 };
        let n = 40_000u64;
        let vals: Vec<f64> = (0..n).map(|r| g.value_at(r, 0)).collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert!((var - 9.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn chunks_are_position_independent() {
        let g = GenSpec::Rnorm { seed: 1, mean: 0.0, sd: 1.0 };
        let mut pool = BufPool::new();
        let whole = g.fill_chunk(0, 100, 2, &mut pool);
        let part = g.fill_chunk(40, 20, 2, &mut pool);
        for c in 0..2 {
            for r in 0..20 {
                assert_eq!(part.get_f64(r, c), whole.get_f64(40 + r, c));
            }
        }
    }

    #[test]
    fn seq_and_const() {
        let mut pool = BufPool::new();
        let s = GenSpec::Seq { start: 5.0, step: 2.0 }.fill_chunk(10, 3, 2, &mut pool);
        assert_eq!(s.get_f64(0, 0), 25.0);
        assert_eq!(s.get_f64(2, 1), 29.0);
        let c = GenSpec::Const { value: -1.5 }.fill_chunk(0, 4, 1, &mut pool);
        assert!(c.slice::<f64>().iter().all(|&v| v == -1.5));
    }

    #[test]
    fn typed_fill_casts() {
        let mut pool = BufPool::new();
        let c = GenSpec::Seq { start: 0.0, step: 1.0 }.fill_chunk_as(DType::I32, 0, 5, 1, &mut pool);
        assert_eq!(c.slice::<i32>(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn distinct_columns_are_decorrelated() {
        let g = GenSpec::Runif { seed: 3, lo: 0.0, hi: 1.0 };
        let n = 10_000u64;
        let mut dot = 0.0;
        for r in 0..n {
            dot += (g.value_at(r, 0) - 0.5) * (g.value_at(r, 1) - 0.5);
        }
        let corr = dot / n as f64 / (1.0 / 12.0);
        assert!(corr.abs() < 0.05, "corr={corr}");
    }
}
