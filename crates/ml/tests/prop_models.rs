//! Property tests for the model layer: exact recovery guarantees that
//! must hold for *any* problem size and seed — ridge solves noiseless
//! linear systems, correlation matrices stay valid, k-means partitions
//! and centers stay mutually consistent.

use flashr_core::fm::FM;
use flashr_core::ops::{AggOp, BinaryOp};
use flashr_core::session::{CtxConfig, FlashCtx};
use flashr_linalg::Dense;
use flashr_ml::*;
use proptest::prelude::*;

fn ctx() -> FlashCtx {
    FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn ridge_recovers_noiseless_weights(
        p in 1usize..6,
        seed in 0u64..1000,
        weights in proptest::collection::vec(-3.0f64..3.0, 1..6),
        intercept in -5.0f64..5.0,
    ) {
        let p = p.min(weights.len());
        let w = &weights[..p];
        let ctx = ctx();
        let n = 2000u64;
        let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, seed);
        let wd = Dense::from_vec(p, 1, w.to_vec());
        let y = &x.matmul(&FM::from_dense(wd)) + intercept;
        let m = ridge_regression(&ctx, &x, &y, 0.0);
        for (got, want) in m.weights.iter().zip(w) {
            prop_assert!((got - want).abs() < 1e-7, "weight {got} vs {want}");
        }
        prop_assert!((m.intercept - intercept).abs() < 1e-7);
    }

    #[test]
    fn correlation_matrix_is_always_valid(p in 2usize..6, seed in 0u64..1000) {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 3000, p, 1.0, 2.0, seed);
        let c = correlation(&ctx, &x);
        for i in 0..p {
            prop_assert!((c.at(i, i) - 1.0).abs() < 1e-9);
            for j in 0..p {
                prop_assert!(c.at(i, j) >= -1.0 - 1e-12 && c.at(i, j) <= 1.0 + 1e-12);
                prop_assert!((c.at(i, j) - c.at(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn kmeans_centers_are_the_means_of_their_clusters(
        k in 1usize..4,
        seed in 0u64..500,
    ) {
        let ctx = ctx();
        let n = 1500u64;
        let x = FM::runif(&ctx, n, 2, -10.0, 10.0, seed).materialize(&ctx);
        let r = kmeans(&ctx, &x, &KmeansOptions { k, max_iters: 15, seed: seed ^ 7 });
        // Recompute the centroid of every cluster from the assignments;
        // after the final update they must coincide with r.centers when
        // converged, and be *self-consistent* regardless.
        let sums = x.groupby_row(&r.assignments, AggOp::Sum, k).to_dense(&ctx);
        let counts = FM::ones(n, 1).groupby_row(&r.assignments, AggOp::Sum, k).to_dense(&ctx);
        if *r.moves.last().unwrap() == 0 {
            for g in 0..k {
                let cnt = counts.at(g, 0);
                if cnt == 0.0 {
                    continue;
                }
                for j in 0..2 {
                    let centroid = sums.at(g, j) / cnt;
                    prop_assert!(
                        (centroid - r.centers.at(g, j)).abs() < 1e-9,
                        "cluster {g} center not the centroid"
                    );
                }
            }
        }
        // Assignments must be nearest-center (Lloyd invariant).
        let d = x.inner_prod(r.centers.transpose(), BinaryOp::EuclidSq, BinaryOp::Add);
        let nearest = d.row_which_min();
        let disagree = nearest
            .ne(&r.assignments)
            .cast(flashr_core::DType::F64)
            .sum()
            .value(&ctx);
        if *r.moves.last().unwrap() == 0 {
            prop_assert_eq!(disagree, 0.0, "assignments are not nearest-center");
        }
    }

    #[test]
    fn naive_bayes_priors_sum_to_one(k in 2usize..5, seed in 0u64..500) {
        let ctx = ctx();
        let n = 3000u64;
        let labels = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, k as f64, false);
        let x = FM::rnorm(&ctx, n, 2, 0.0, 1.0, seed);
        let m = naive_bayes(&ctx, &x, &labels, k);
        let total: f64 = m.priors.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
        for v in 0..k {
            for j in 0..2 {
                prop_assert!(m.vars.at(v, j) > 0.0, "variance must stay positive");
            }
        }
    }
}
