//! Evaluation metrics, computed with fused engine passes where the data
//! is tall: confusion matrices (via `groupby.row` on a combined label),
//! log-loss, RMSE/R², and the adjusted Rand index for clusterings.

use flashr_core::fm::FM;
use flashr_core::ops::{AggOp, BinaryOp};
use flashr_core::session::FlashCtx;
use flashr_linalg::Dense;

/// k×k confusion matrix: `counts[truth][pred]`. One fused pass — the
/// pair (truth, pred) is encoded as `truth·k + pred` and counted with a
/// single groupby.
pub fn confusion_matrix(ctx: &FlashCtx, truth: &FM, pred: &FM, k: usize) -> Dense {
    assert_eq!(truth.nrow(), pred.nrow(), "label length mismatch");
    let combined = truth
        .cast(flashr_core::DType::F64)
        .binary_scalar(BinaryOp::Mul, k as f64, false)
        .binary(BinaryOp::Add, &pred.cast(flashr_core::DType::F64), false)
        .cast(flashr_core::DType::I64);
    let counts = FM::ones(truth.nrow(), 1)
        .groupby_row(&combined, AggOp::Sum, k * k)
        .to_dense(ctx);
    Dense::from_fn(k, k, |t, p| counts.at(t * k + p, 0))
}

/// Binary log-loss of probabilities `p` against 0/1 labels `y`
/// (clamped for numerical safety). One fused pass.
pub fn log_loss(ctx: &FlashCtx, y: &FM, p: &FM) -> f64 {
    let n = y.nrow() as f64;
    let eps = 1e-12;
    let p = p
        .binary_scalar(BinaryOp::Max, eps, false)
        .binary_scalar(BinaryOp::Min, 1.0 - eps, false);
    // −[y ln p + (1−y) ln(1−p)]
    let yl = y.binary(BinaryOp::Mul, &p.ln(), false);
    let nyl = (1.0 - y).binary(BinaryOp::Mul, &(1.0 - &p).ln(), false);
    -(yl.binary(BinaryOp::Add, &nyl, false).sum().value(ctx)) / n
}

/// Root-mean-square error between two columns. One fused pass.
pub fn rmse(ctx: &FlashCtx, truth: &FM, pred: &FM) -> f64 {
    let n = truth.nrow() as f64;
    (truth.binary(BinaryOp::Sub, pred, false).square().sum().value(ctx) / n).sqrt()
}

/// Coefficient of determination R². Two sinks, one fused pass.
pub fn r_squared(ctx: &FlashCtx, truth: &FM, pred: &FM) -> f64 {
    let n = truth.nrow() as f64;
    let resid = truth.binary(BinaryOp::Sub, pred, false).square().sum();
    let sum = truth.sum();
    let sumsq = truth.square().sum();
    let out = FM::materialize_multi(ctx, &[&resid, &sum, &sumsq]);
    let ss_res = out[0].value(ctx);
    let mean = out[1].value(ctx) / n;
    let ss_tot = out[2].value(ctx) - n * mean * mean;
    1.0 - ss_res / ss_tot.max(1e-300)
}

/// Adjusted Rand index between two clusterings (labels in `[0, k)`),
/// from the confusion matrix — 1.0 for identical partitions (up to
/// label permutation this is *not* invariant; ARI handles that), ≈0 for
/// random agreement.
pub fn adjusted_rand_index(ctx: &FlashCtx, a: &FM, b: &FM, k: usize) -> f64 {
    let m = confusion_matrix(ctx, a, b, k);
    let n: f64 = (0..k).map(|i| (0..k).map(|j| m.at(i, j)).sum::<f64>()).sum();
    let comb2 = |x: f64| x * (x - 1.0) / 2.0;
    let sum_ij: f64 = (0..k).flat_map(|i| (0..k).map(move |j| (i, j))).map(|(i, j)| comb2(m.at(i, j))).sum();
    let sum_a: f64 = (0..k).map(|i| comb2((0..k).map(|j| m.at(i, j)).sum())).sum();
    let sum_b: f64 = (0..k).map(|j| comb2((0..k).map(|i| m.at(i, j)).sum())).sum();
    let expected = sum_a * sum_b / comb2(n).max(1e-300);
    let max_index = 0.5 * (sum_a + sum_b);
    (sum_ij - expected) / (max_index - expected).max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
    }

    #[test]
    fn confusion_matrix_counts() {
        let ctx = ctx();
        let truth = FM::from_vec(&ctx, &[0.0, 0.0, 1.0, 1.0, 1.0]);
        let pred = FM::from_vec(&ctx, &[0.0, 1.0, 1.0, 1.0, 0.0]);
        let m = confusion_matrix(&ctx, &truth, &pred, 2);
        assert_eq!(m.at(0, 0), 1.0);
        assert_eq!(m.at(0, 1), 1.0);
        assert_eq!(m.at(1, 0), 1.0);
        assert_eq!(m.at(1, 1), 2.0);
    }

    #[test]
    fn log_loss_behaviour() {
        let ctx = ctx();
        let y = FM::from_vec(&ctx, &[1.0, 0.0, 1.0, 0.0]);
        let perfect = FM::from_vec(&ctx, &[1.0, 0.0, 1.0, 0.0]);
        assert!(log_loss(&ctx, &y, &perfect) < 1e-10);
        let chance = FM::constant(4, 1, 0.5);
        assert!((log_loss(&ctx, &y, &chance) - std::f64::consts::LN_2).abs() < 1e-12);
        let wrong = FM::from_vec(&ctx, &[0.0, 1.0, 0.0, 1.0]);
        assert!(log_loss(&ctx, &y, &wrong) > 10.0);
    }

    #[test]
    fn rmse_and_r2() {
        let ctx = ctx();
        let truth = FM::seq(100, 0.0, 1.0);
        assert_eq!(rmse(&ctx, &truth, &truth), 0.0);
        assert!((r_squared(&ctx, &truth, &truth) - 1.0).abs() < 1e-12);
        let off = &truth + 2.0;
        assert!((rmse(&ctx, &truth, &off) - 2.0).abs() < 1e-12);
        // Constant predictor → R² ≈ 0.
        let mean_pred = FM::constant(100, 1, 49.5);
        assert!(r_squared(&ctx, &truth, &mean_pred).abs() < 1e-9);
    }

    #[test]
    fn ari_identical_permuted_and_random() {
        let ctx = ctx();
        let n = 600u64;
        let a = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 3.0, false).cast(flashr_core::DType::I64);
        // Identical partition.
        assert!((adjusted_rand_index(&ctx, &a, &a, 3) - 1.0).abs() < 1e-12);
        // Same partition with permuted label names → still 1.
        let permuted = a
            .cast(flashr_core::DType::F64)
            .binary_scalar(BinaryOp::Add, 1.0, false)
            .binary_scalar(BinaryOp::Rem, 3.0, false)
            .cast(flashr_core::DType::I64);
        assert!((adjusted_rand_index(&ctx, &a, &permuted, 3) - 1.0).abs() < 1e-12);
        // An unrelated partition (blocks of 200 vs residues mod 3) → ≈0.
        let unrelated = FM::seq(n, 0.0, 1.0)
            .binary_scalar(BinaryOp::Div, 200.0, false)
            .floor()
            .binary_scalar(BinaryOp::Rem, 3.0, false)
            .cast(flashr_core::DType::I64);
        let ari = adjusted_rand_index(&ctx, &a, &unrelated, 3);
        assert!(ari.abs() < 0.05, "ari {ari}");
    }
}
