//! k-means clustering — the paper's Figure 3 program, verbatim in FM
//! terms: Euclidean distances through the generalized `inner.prod`
//! GenOp, assignment via `agg.row(which.min)` (cached with `set.cache`),
//! counts and new centers via `groupby.row`, convergence when no point
//! moves. Each iteration is a single fused pass.

use flashr_core::fm::FM;
use flashr_core::ops::{AggOp, BinaryOp};
use flashr_core::session::FlashCtx;
use flashr_linalg::Dense;

/// Options for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KmeansOptions {
    /// Number of clusters (the paper defaults to 10).
    pub k: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Seed for the initial centers (sampled rows).
    pub seed: u64,
}

impl Default for KmeansOptions {
    fn default() -> Self {
        KmeansOptions { k: 10, max_iters: 50, seed: 1 }
    }
}

/// Result of [`kmeans`].
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// k×p cluster centers.
    pub centers: Dense,
    /// Final assignments (n×1, cached leaf).
    pub assignments: FM,
    /// Iterations run until convergence (or the cap).
    pub iterations: usize,
    /// Points that changed cluster at each iteration.
    pub moves: Vec<u64>,
}

/// Initial centers by farthest-first traversal over a hashed candidate
/// sample (a cheap kmeans++-style init that avoids Lloyd's worst local
/// optima). Shared with GMM via `util`.
fn init_centers(ctx: &FlashCtx, x: &FM, k: usize, seed: u64) -> Dense {
    crate::util::farthest_first_init(ctx, x, k, seed)
}

/// Lloyd's k-means on the rows of `x`.
pub fn kmeans(ctx: &FlashCtx, x: &FM, opts: &KmeansOptions) -> KmeansResult {
    let k = opts.k;
    let n = x.nrow();
    let p = x.ncol() as usize;
    assert!(k >= 1 && (k as u64) <= n, "bad cluster count");

    let mut centers = init_centers(ctx, x, k, opts.seed);
    let mut old_assign: Option<FM> = None;
    let mut moves_hist = Vec::new();
    let mut iterations = 0;

    for _ in 0..opts.max_iters {
        iterations += 1;
        // D[i, c] = Σⱼ (x[i,j] − centers[c,j])² via inner.prod with the
        // "euclidean" element function (paper Fig. 3).
        let centers_t = centers.transpose(); // p×k
        let d = x.inner_prod(centers_t, BinaryOp::EuclidSq, BinaryOp::Add);
        let assign = d.row_which_min();
        assign.set_cache(true); // paper: set.cache(I, TRUE)

        let counts = FM::ones(n, 1).groupby_row(&assign, AggOp::Sum, k);
        let sums = x.groupby_row(&assign, AggOp::Sum, k);

        let (counts_d, sums_d, moved) = match &old_assign {
            None => {
                let out = FM::materialize_multi(ctx, &[&counts, &sums]);
                (out[0].to_dense(ctx), out[1].to_dense(ctx), n)
            }
            Some(old) => {
                let moves_sink = assign.ne(old).cast(flashr_core::DType::F64).sum();
                let out = FM::materialize_multi(ctx, &[&counts, &sums, &moves_sink]);
                (out[0].to_dense(ctx), out[1].to_dense(ctx), out[2].value(ctx) as u64)
            }
        };
        moves_hist.push(moved);

        // New centers = groupby sums / counts; empty clusters keep their
        // previous center.
        let mut new_centers = Dense::zeros(k, p);
        for g in 0..k {
            let c = counts_d.at(g, 0);
            for j in 0..p {
                let v = if c > 0.0 { sums_d.at(g, j) / c } else { centers.at(g, j) };
                new_centers.set(g, j, v);
            }
        }
        centers = new_centers;

        let converged = moved == 0;
        old_assign = Some(assign);
        if converged {
            break;
        }
    }

    KmeansResult {
        centers,
        assignments: old_assign.expect("at least one iteration"),
        iterations,
        moves: moves_hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
    }

    /// Two tight blobs at 0 and at 10 (1-D).
    fn blobs(ctx: &FlashCtx, n: u64) -> FM {
        let labels = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 2.0, false);
        let base = FM::rnorm(ctx, n, 1, 0.0, 0.3, 5);
        base.binary(BinaryOp::Add, &(&labels.cast(flashr_core::DType::F64) * 10.0), false)
    }

    #[test]
    fn separates_two_blobs() {
        let ctx = ctx();
        let x = blobs(&ctx, 2000);
        let r = kmeans(&ctx, &x, &KmeansOptions { k: 2, max_iters: 20, seed: 3 });
        let mut centers = [r.centers.at(0, 0), r.centers.at(1, 0)];
        centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(centers[0].abs() < 0.2, "center {}", centers[0]);
        assert!((centers[1] - 10.0).abs() < 0.2, "center {}", centers[1]);
    }

    #[test]
    fn converges_with_zero_moves() {
        let ctx = ctx();
        let x = blobs(&ctx, 1000);
        let r = kmeans(&ctx, &x, &KmeansOptions { k: 2, max_iters: 30, seed: 1 });
        assert_eq!(*r.moves.last().unwrap(), 0, "did not converge: {:?}", r.moves);
        assert!(r.iterations < 30);
    }

    #[test]
    fn assignments_are_balanced_on_balanced_blobs() {
        let ctx = ctx();
        let x = blobs(&ctx, 2000);
        let r = kmeans(&ctx, &x, &KmeansOptions { k: 2, max_iters: 20, seed: 1 });
        let a = r.assignments.to_vec(&ctx);
        let ones: f64 = a.iter().sum();
        assert!((ones - 1000.0).abs() < 1.0, "unbalanced assignment: {ones}");
    }

    #[test]
    fn one_pass_per_iteration() {
        let ctx = ctx();
        let x = blobs(&ctx, 1000).materialize(&ctx);
        let before = ctx.stats().snapshot();
        let r = kmeans(&ctx, &x, &KmeansOptions { k: 2, max_iters: 20, seed: 1 });
        let passes = before.delta(&ctx.stats().snapshot()).passes;
        // One fused pass per iteration (the k init-center probes read
        // partitions directly without an engine pass).
        assert_eq!(passes as usize, r.iterations, "passes {passes} vs iters {}", r.iterations);
    }

    #[test]
    fn multi_dimensional_clusters() {
        let ctx = ctx();
        let n = 3000u64;
        let labels = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 3.0, false);
        let base = FM::rnorm(&ctx, n, 4, 0.0, 0.5, 9);
        let x = base.binary(BinaryOp::Add, &(&labels.cast(flashr_core::DType::F64) * 8.0), false);
        let r = kmeans(&ctx, &x, &KmeansOptions { k: 3, max_iters: 30, seed: 2 });
        let mut c0: Vec<f64> = (0..3).map(|g| r.centers.at(g, 0)).collect();
        c0.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(c0[0].abs() < 0.5 && (c0[1] - 8.0).abs() < 0.5 && (c0[2] - 16.0).abs() < 0.5,
            "centers {c0:?}");
    }

    #[test]
    fn k_equals_one_gives_the_mean() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 4000, 2, 3.0, 1.0, 4);
        let r = kmeans(&ctx, &x, &KmeansOptions { k: 1, max_iters: 5, seed: 1 });
        assert!((r.centers.at(0, 0) - 3.0).abs() < 0.1);
        assert!((r.centers.at(0, 1) - 3.0).abs() < 0.1);
        assert_eq!(*r.moves.last().unwrap(), 0);
    }
}
