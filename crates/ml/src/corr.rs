//! Pairwise Pearson correlation (paper §4.1) in one fused pass.

use flashr_core::fm::FM;
use flashr_core::session::FlashCtx;
use flashr_linalg::Dense;

/// Pearson correlation matrix of the columns of `x` (population
/// covariance normalization, like the paper's one-pass formulation).
///
/// A single fused pass computes the column sums and the Gramian `XᵀX`;
/// the p×p reduction then happens in memory:
/// `corr[i][j] = (G/n − μμᵀ)[i][j] / (σᵢ σⱼ)`.
pub fn correlation(ctx: &FlashCtx, x: &FM) -> Dense {
    let n = x.nrow() as f64;
    let p = x.ncol() as usize;
    let sums = x.col_sums();
    let gram = x.crossprod();
    let out = FM::materialize_multi(ctx, &[&sums, &gram]);
    let sums = out[0].to_dense(ctx);
    let gram = out[1].to_dense(ctx);

    let mu: Vec<f64> = (0..p).map(|j| sums.at(0, j) / n).collect();
    let sd: Vec<f64> = (0..p)
        .map(|j| (gram.at(j, j) / n - mu[j] * mu[j]).max(0.0).sqrt())
        .collect();
    Dense::from_fn(p, p, |i, j| {
        if sd[i] == 0.0 || sd[j] == 0.0 {
            if i == j {
                1.0
            } else {
                f64::NAN
            }
        } else {
            let cov = gram.at(i, j) / n - mu[i] * mu[j];
            (cov / (sd[i] * sd[j])).clamp(-1.0, 1.0)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 128, ..Default::default() }, None)
    }

    #[test]
    fn diagonal_is_one() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 3000, 4, 1.0, 2.0, 3);
        let c = correlation(&ctx, &x);
        for i in 0..4 {
            assert!((c.at(i, i) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn independent_columns_are_uncorrelated() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 50_000, 3, 0.0, 1.0, 11);
        let c = correlation(&ctx, &x);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    assert!(c.at(i, j).abs() < 0.03, "corr({i},{j})={}", c.at(i, j));
                }
            }
        }
    }

    #[test]
    fn perfectly_correlated_columns() {
        let ctx = ctx();
        let a = FM::seq(1000, 0.0, 1.0);
        let b = &(&a * 2.0) + 3.0; // perfectly correlated
        let c = &(&a * -1.0) + 5.0; // perfectly anti-correlated
        let x = FM::cbind(&[&a, &b, &c]);
        let m = correlation(&ctx, &x);
        assert!((m.at(0, 1) - 1.0).abs() < 1e-9);
        assert!((m.at(0, 2) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn matches_naive_computation() {
        let ctx = ctx();
        let x = FM::runif(&ctx, 500, 3, -1.0, 1.0, 9);
        let c = correlation(&ctx, &x);
        let d = x.to_dense(&ctx);
        let n = 500.0;
        for i in 0..3 {
            for j in 0..3 {
                let (mut si, mut sj, mut sij, mut sii, mut sjj) = (0.0, 0.0, 0.0, 0.0, 0.0);
                for r in 0..500 {
                    let a = d.at(r, i);
                    let b = d.at(r, j);
                    si += a;
                    sj += b;
                    sij += a * b;
                    sii += a * a;
                    sjj += b * b;
                }
                let cov = sij / n - si / n * (sj / n);
                let sd = ((sii / n - (si / n) * (si / n)) * (sjj / n - (sj / n) * (sj / n))).sqrt();
                assert!((c.at(i, j) - cov / sd).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn single_pass_execution() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 2000, 4, 0.0, 1.0, 1);
        let before = ctx.stats().snapshot();
        let _ = correlation(&ctx, &x);
        assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 1);
    }
}
