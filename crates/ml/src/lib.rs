//! # flashr-ml
//!
//! The FlashR paper's benchmark algorithms (§4.1, Table 4), written the
//! way the paper writes them: plain array programs against the
//! [`FM`](flashr_core::fm::FM) matrix API, relying on the engine for
//! parallel and out-of-core execution. Per-iteration sink groups are
//! materialized together (`FM::materialize_multi`) so every iteration is
//! one fused pass over the data, as the paper's DAGs are.
//!
//! | Algorithm | Computation | I/O (paper Table 4) |
//! |---|---|---|
//! | [`correlation`] | O(n·p²) | O(n·p) |
//! | [`pca()`](pca()) | O(n·p²) | O(n·p) |
//! | [`naive_bayes()`](naive_bayes()) | O(n·p) | O(n·p) |
//! | [`logistic_regression`] | O(n·p)/iter | O(n·p)/iter |
//! | [`kmeans()`](kmeans()) | O(n·p·k)/iter | O(n·p)/iter |
//! | [`gmm()`](gmm()) | O(n·p²·k)/iter | O(n·p + n·k)/iter |
//! | [`mvrnorm`] | O(n·p²) | O(n·p) |
//! | [`lda()`](lda()) | O(n·p²) | O(n·p) |

pub mod corr;
pub mod gmm;
pub mod kmeans;
pub mod lda;
pub mod logreg;
pub mod metrics;
pub mod naive_bayes;
pub mod pca;
pub mod ridge;
pub mod sampling;
pub mod util;

pub use corr::correlation;
pub use gmm::{gmm, GmmModel, GmmOptions};
pub use kmeans::{kmeans, KmeansOptions, KmeansResult};
pub use lda::{lda, LdaModel};
pub use logreg::{logistic_regression, logistic_regression_gd, LogRegModel, LogRegOptions};
pub use metrics::{adjusted_rand_index, confusion_matrix, log_loss, r_squared, rmse};
pub use naive_bayes::{naive_bayes, NaiveBayesModel};
pub use pca::{pca, PcaResult};
pub use ridge::{ridge_regression, RidgeModel};
pub use sampling::mvrnorm;
pub use util::accuracy;
