//! Linear regression with an optional ridge penalty, via the normal
//! equations: one fused pass builds `XᵀX` and `Xᵀy`; the p×p solve is
//! in-memory Cholesky — the same Gramian-sink pattern as PCA (§4.1).

use flashr_core::fm::FM;
use flashr_core::session::FlashCtx;
use flashr_linalg::{chol_solve, cholesky, Dense};

/// Fitted linear model.
#[derive(Debug, Clone)]
pub struct RidgeModel {
    /// Feature weights (length p).
    pub weights: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
    /// The penalty used.
    pub lambda: f64,
}

/// Fit `y ≈ X w + b` minimizing `‖y − Xw − b‖² + λ‖w‖²`.
///
/// One fused pass computes `XᵀX`, `Xᵀy`, `colSums(X)` and `sum(y)`; the
/// centered normal equations are then p×p work in memory.
pub fn ridge_regression(ctx: &FlashCtx, x: &FM, y: &FM, lambda: f64) -> RidgeModel {
    assert!(lambda >= 0.0, "lambda must be nonnegative");
    let n = x.nrow() as f64;
    let p = x.ncol() as usize;
    let out = FM::materialize_multi(
        ctx,
        &[&x.crossprod(), &x.crossprod_with(y), &x.col_sums(), &y.sum()],
    );
    let xtx = out[0].to_dense(ctx);
    let xty = out[1].to_dense(ctx);
    let xs = out[2].to_dense(ctx);
    let ys = out[3].value(ctx);

    let xbar: Vec<f64> = (0..p).map(|j| xs.at(0, j) / n).collect();
    let ybar = ys / n;
    // Centered system: (XᵀX − n x̄x̄ᵀ + λI) w = Xᵀy − n x̄ ȳ.
    let a = Dense::from_fn(p, p, |i, j| {
        xtx.at(i, j) - n * xbar[i] * xbar[j] + if i == j { lambda } else { 0.0 }
    });
    let b = Dense::from_fn(p, 1, |i, _| xty.at(i, 0) - n * xbar[i] * ybar);
    let l = cholesky(&a).expect("ridge system must be positive definite (raise lambda)");
    let w = chol_solve(&l, &b);
    let weights: Vec<f64> = (0..p).map(|i| w.at(i, 0)).collect();
    let intercept = ybar - weights.iter().zip(&xbar).map(|(wi, xi)| wi * xi).sum::<f64>();
    RidgeModel { weights, intercept, lambda }
}

impl RidgeModel {
    /// Predictions (lazy n×1).
    pub fn predict(&self, x: &FM) -> FM {
        let w = Dense::from_vec(self.weights.len(), 1, self.weights.clone());
        &x.matmul(&FM::from_dense(w)) + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{r_squared, rmse};
    use flashr_core::ops::BinaryOp;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 512, ..Default::default() }, None)
    }

    fn linear_data(ctx: &FlashCtx, n: u64, noise: f64) -> (FM, FM) {
        let x = FM::rnorm(ctx, n, 3, 0.0, 1.0, 5);
        let w = Dense::from_vec(3, 1, vec![2.0, -1.0, 0.5]);
        let y = &x.matmul(&FM::from_dense(w)) + 4.0;
        let y = y.binary(BinaryOp::Add, &FM::rnorm(ctx, n, 1, 0.0, noise, 6), false);
        (x, y)
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        let ctx = ctx();
        let (x, y) = linear_data(&ctx, 5000, 0.0);
        let m = ridge_regression(&ctx, &x, &y, 0.0);
        assert!((m.weights[0] - 2.0).abs() < 1e-8);
        assert!((m.weights[1] + 1.0).abs() < 1e-8);
        assert!((m.weights[2] - 0.5).abs() < 1e-8);
        assert!((m.intercept - 4.0).abs() < 1e-8);
        assert!(rmse(&ctx, &y, &m.predict(&x)) < 1e-8);
    }

    #[test]
    fn noisy_fit_is_near_truth_with_high_r2() {
        let ctx = ctx();
        let (x, y) = linear_data(&ctx, 20_000, 0.5);
        let m = ridge_regression(&ctx, &x, &y, 1e-6);
        assert!((m.weights[0] - 2.0).abs() < 0.02);
        let r2 = r_squared(&ctx, &y, &m.predict(&x));
        assert!(r2 > 0.94, "r2={r2}");
    }

    #[test]
    fn lambda_shrinks_weights() {
        let ctx = ctx();
        let (x, y) = linear_data(&ctx, 4000, 0.2);
        let free = ridge_regression(&ctx, &x, &y, 0.0);
        let tight = ridge_regression(&ctx, &x, &y, 1e5);
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm(&tight.weights) < 0.1 * norm(&free.weights));
    }

    #[test]
    fn training_is_single_pass() {
        let ctx = ctx();
        let (x, y) = linear_data(&ctx, 4000, 0.1);
        let (x, y) = (x.materialize(&ctx), y.materialize(&ctx));
        let before = ctx.stats().snapshot();
        let _ = ridge_regression(&ctx, &x, &y, 0.1);
        assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 1);
    }
}
