//! Linear discriminant analysis, MASS-style (paper §4.1: "the normal
//! distribution with a different mean for each class but sharing the same
//! covariance matrix").
//!
//! Training is one fused pass: the total Gramian, per-class sums and
//! counts. The pooled within-class covariance follows from
//! `W = XᵀX − Σ_c n_c μ_c μ_cᵀ`, and classification uses the linear
//! discriminants `δ_c(x) = x·Σ⁻¹μ_c − ½ μ_cᵀΣ⁻¹μ_c + ln π_c`.

use flashr_core::fm::FM;
use flashr_core::ops::AggOp;
use flashr_core::session::FlashCtx;
use flashr_linalg::{chol_solve, cholesky, Dense};

/// Fitted LDA model.
#[derive(Debug, Clone)]
pub struct LdaModel {
    /// k×p class means.
    pub means: Dense,
    /// Class priors.
    pub priors: Vec<f64>,
    /// Pooled within-class covariance (p×p).
    pub cov: Dense,
    /// p×k discriminant coefficients `Σ⁻¹ μ_c`.
    pub coef: Dense,
    /// Per-class intercepts `−½ μᵀΣ⁻¹μ + ln π`.
    pub intercepts: Vec<f64>,
    /// Number of classes.
    pub k: usize,
}

/// Train LDA on `x` (n×p) with integer labels `y` in `[0, k)`.
pub fn lda(ctx: &FlashCtx, x: &FM, y: &FM, k: usize) -> LdaModel {
    let n = x.nrow() as f64;
    let p = x.ncol() as usize;
    let labels = y.cast(flashr_core::DType::I64);
    labels.set_cache(true);

    let out = FM::materialize_multi(
        ctx,
        &[
            &x.crossprod(),
            &x.groupby_row(&labels, AggOp::Sum, k),
            &FM::ones(x.nrow(), 1).groupby_row(&labels, AggOp::Sum, k),
        ],
    );
    let gram = out[0].to_dense(ctx);
    let sums = out[1].to_dense(ctx);
    let counts = out[2].to_dense(ctx);

    let means = Dense::from_fn(k, p, |g, j| sums.at(g, j) / counts.at(g, 0).max(1.0));
    let priors: Vec<f64> = (0..k).map(|g| counts.at(g, 0) / n).collect();

    // Pooled within-class covariance.
    let mut w = gram.clone();
    for g in 0..k {
        let ng = counts.at(g, 0);
        for i in 0..p {
            for j in 0..p {
                let v = w.at(i, j) - ng * means.at(g, i) * means.at(g, j);
                w.set(i, j, v);
            }
        }
    }
    let denom = (n - k as f64).max(1.0);
    let mut cov = w;
    for i in 0..p {
        for j in 0..p {
            let v = cov.at(i, j) / denom + if i == j { 1e-9 } else { 0.0 };
            cov.set(i, j, v);
        }
    }

    let l = cholesky(&cov).expect("within-class covariance must be positive definite");
    let coef = chol_solve(&l, &means.transpose()); // p×k: Σ⁻¹ μ_c per column
    let intercepts: Vec<f64> = (0..k)
        .map(|g| {
            let mut quad = 0.0;
            for j in 0..p {
                quad += means.at(g, j) * coef.at(j, g);
            }
            -0.5 * quad + priors[g].max(1e-300).ln()
        })
        .collect();

    LdaModel { means, priors, cov, coef, intercepts, k }
}

impl LdaModel {
    /// Predicted class per row (lazy n×1).
    pub fn predict(&self, x: &FM) -> FM {
        let consts = Dense::from_vec(1, self.k, self.intercepts.clone());
        x.matmul(&FM::from_dense(self.coef.clone()))
            .binary(flashr_core::ops::BinaryOp::Add, &FM::from_dense(consts), false)
            .row_which_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::accuracy;
    use flashr_core::ops::BinaryOp;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
    }

    fn shifted_classes(ctx: &FlashCtx, n: u64, k: usize, shift: f64) -> (FM, FM) {
        let labels = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, k as f64, false);
        let base = FM::rnorm(ctx, n, 3, 0.0, 1.0, 19);
        let x = base.binary(BinaryOp::Add, &(&labels.cast(flashr_core::DType::F64) * shift), false);
        (x, labels)
    }

    #[test]
    fn recovers_class_means_and_priors() {
        let ctx = ctx();
        let (x, y) = shifted_classes(&ctx, 12_000, 2, 5.0);
        let m = lda(&ctx, &x, &y, 2);
        assert!((m.priors[0] - 0.5).abs() < 0.01);
        for j in 0..3 {
            assert!(m.means.at(0, j).abs() < 0.06);
            assert!((m.means.at(1, j) - 5.0).abs() < 0.06);
        }
    }

    #[test]
    fn pooled_covariance_is_identityish() {
        let ctx = ctx();
        let (x, y) = shifted_classes(&ctx, 20_000, 2, 4.0);
        let m = lda(&ctx, &x, &y, 2);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((m.cov.at(i, j) - want).abs() < 0.06, "cov({i},{j})={}", m.cov.at(i, j));
            }
        }
    }

    #[test]
    fn classifies_separated_classes() {
        let ctx = ctx();
        let (x, y) = shifted_classes(&ctx, 8000, 3, 6.0);
        let m = lda(&ctx, &x, &y, 3);
        let acc = accuracy(&ctx, &m.predict(&x), &y);
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn training_is_single_pass() {
        let ctx = ctx();
        let (x, y) = shifted_classes(&ctx, 4000, 2, 4.0);
        let before = ctx.stats().snapshot();
        let _ = lda(&ctx, &x, &y, 2);
        assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 1);
    }

    #[test]
    fn overlapping_classes_degrade_gracefully() {
        let ctx = ctx();
        let (x, y) = shifted_classes(&ctx, 8000, 2, 1.0);
        let m = lda(&ctx, &x, &y, 2);
        let acc = accuracy(&ctx, &m.predict(&x), &y);
        // d' per dim is 1σ over 3 dims → Bayes accuracy ≈ Φ(√3/2) ≈ 0.80.
        assert!(acc > 0.72 && acc < 0.88, "accuracy {acc}");
    }
}
