//! Principal component analysis via the Gramian (paper §4.1: "We
//! implement PCA by computing eigenvalues on the Gramian matrix AᵀA").

use flashr_core::fm::FM;
use flashr_core::session::FlashCtx;
use flashr_linalg::{eigen_sym, Dense};

/// PCA result.
#[derive(Debug, Clone)]
pub struct PcaResult {
    /// Column means used for centering (length p).
    pub center: Vec<f64>,
    /// Standard deviations of the principal components (descending).
    pub sdev: Vec<f64>,
    /// p×k rotation (loadings); column `i` is the i-th component.
    pub rotation: Dense,
}

impl PcaResult {
    /// Project a tall matrix onto the first k components (lazy).
    pub fn project(&self, x: &FM) -> FM {
        x.sweep_cols(&self.center, flashr_core::ops::BinaryOp::Sub)
            .matmul(&FM::from_dense(self.rotation.clone()))
    }
}

/// PCA of the columns of `x`, keeping `ncomp` components.
///
/// One fused pass produces column sums and the Gramian; the covariance
/// `C = (XᵀX − n μμᵀ)/(n−1)` and its eigendecomposition are p×p work in
/// memory.
pub fn pca(ctx: &FlashCtx, x: &FM, ncomp: usize) -> PcaResult {
    let n = x.nrow() as f64;
    let p = x.ncol() as usize;
    assert!(ncomp >= 1 && ncomp <= p, "ncomp out of range");
    let out = FM::materialize_multi(ctx, &[&x.col_sums(), &x.crossprod()]);
    let sums = out[0].to_dense(ctx);
    let gram = out[1].to_dense(ctx);

    let center: Vec<f64> = (0..p).map(|j| sums.at(0, j) / n).collect();
    let cov = Dense::from_fn(p, p, |i, j| (gram.at(i, j) - n * center[i] * center[j]) / (n - 1.0));
    let eig = eigen_sym(&cov);

    let sdev: Vec<f64> = eig.values.iter().take(ncomp).map(|&v| v.max(0.0).sqrt()).collect();
    let rotation = Dense::from_fn(p, ncomp, |r, c| eig.vectors.at(r, c));
    PcaResult { center, sdev, rotation }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 128, ..Default::default() }, None)
    }

    #[test]
    fn recovers_dominant_direction() {
        let ctx = ctx();
        // Data along the (1,1)/√2 direction with small orthogonal noise.
        let t = FM::rnorm(&ctx, 5000, 1, 0.0, 3.0, 1);
        let noise = FM::rnorm(&ctx, 5000, 1, 0.0, 0.1, 2);
        let x = FM::cbind(&[&(&t + &noise), &(&t - &noise)]);
        let r = pca(&ctx, &x, 2);
        let v0 = [r.rotation.at(0, 0), r.rotation.at(1, 0)];
        let inv_sqrt2 = 1.0 / 2.0f64.sqrt();
        assert!(
            (v0[0].abs() - inv_sqrt2).abs() < 0.02 && (v0[1].abs() - inv_sqrt2).abs() < 0.02,
            "first component {v0:?} not along the diagonal"
        );
        assert!(r.sdev[0] > 10.0 * r.sdev[1], "variance not concentrated");
    }

    #[test]
    fn sdev_matches_column_variance_for_axis_aligned_data() {
        let ctx = ctx();
        let a = FM::rnorm(&ctx, 20_000, 1, 0.0, 5.0, 3);
        let b = FM::rnorm(&ctx, 20_000, 1, 0.0, 1.0, 4);
        let x = FM::cbind(&[&a, &b]);
        let r = pca(&ctx, &x, 2);
        assert!((r.sdev[0] - 5.0).abs() < 0.15, "sdev0={}", r.sdev[0]);
        assert!((r.sdev[1] - 1.0).abs() < 0.05, "sdev1={}", r.sdev[1]);
    }

    #[test]
    fn projection_decorrelates() {
        let ctx = ctx();
        let t = FM::rnorm(&ctx, 8000, 1, 2.0, 2.0, 7);
        let u = FM::rnorm(&ctx, 8000, 1, -1.0, 1.0, 8);
        let x = FM::cbind(&[&(&t + &u), &t]);
        let r = pca(&ctx, &x, 2);
        let proj = r.project(&x);
        let c = crate::corr::correlation(&ctx, &proj);
        assert!(c.at(0, 1).abs() < 0.02, "components still correlated: {}", c.at(0, 1));
    }

    #[test]
    fn centering_vector_is_column_means() {
        let ctx = ctx();
        let x = &FM::rnorm(&ctx, 4000, 3, 0.0, 1.0, 5) + 10.0;
        let r = pca(&ctx, &x, 1);
        for m in &r.center {
            assert!((m - 10.0).abs() < 0.1);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_bad_ncomp() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 100, 2, 0.0, 1.0, 1);
        let _ = pca(&ctx, &x, 3);
    }
}
