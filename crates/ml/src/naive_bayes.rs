//! Gaussian naive Bayes (paper §4.1: "assumes data follows the normal
//! distribution").
//!
//! Training is one fused pass: per-class sums, sums of squares and counts
//! come from three groupby sinks over the same cached label column.
//! Prediction is one fused pass too: the per-class log posterior
//! `Σⱼ −(xⱼ−μ)²/(2σ²) − ln σ + ln π` expands into
//! `X² B₂ + X B₁ + const`, two tall×small multiplies and an argmax.

use flashr_core::fm::FM;
use flashr_core::ops::AggOp;
use flashr_core::session::FlashCtx;
use flashr_linalg::Dense;

/// Trained Gaussian naive Bayes model.
#[derive(Debug, Clone)]
pub struct NaiveBayesModel {
    /// k×p per-class feature means.
    pub means: Dense,
    /// k×p per-class feature variances.
    pub vars: Dense,
    /// Class priors (length k).
    pub priors: Vec<f64>,
    /// Number of classes.
    pub k: usize,
}

/// Train on `x` (n×p) with integer class labels `y` (n×1, values in
/// `[0, k)`).
pub fn naive_bayes(ctx: &FlashCtx, x: &FM, y: &FM, k: usize) -> NaiveBayesModel {
    let n = x.nrow() as f64;
    let p = x.ncol() as usize;
    let labels = y.cast(flashr_core::DType::I64);
    labels.set_cache(true);

    let sums = x.groupby_row(&labels, AggOp::Sum, k);
    let sq_sums = x.square().groupby_row(&labels, AggOp::Sum, k);
    let counts = FM::ones(x.nrow(), 1).groupby_row(&labels, AggOp::Sum, k);
    let out = FM::materialize_multi(ctx, &[&sums, &sq_sums, &counts]);
    let sums = out[0].to_dense(ctx);
    let sq_sums = out[1].to_dense(ctx);
    let counts = out[2].to_dense(ctx);

    let means = Dense::from_fn(k, p, |g, j| sums.at(g, j) / counts.at(g, 0).max(1.0));
    let vars = Dense::from_fn(k, p, |g, j| {
        let m = means.at(g, j);
        // Variance floor keeps degenerate features usable (sklearn-style).
        (sq_sums.at(g, j) / counts.at(g, 0).max(1.0) - m * m).max(1e-9)
    });
    let priors: Vec<f64> = (0..k).map(|g| counts.at(g, 0) / n).collect();
    NaiveBayesModel { means, vars, priors, k }
}

impl NaiveBayesModel {
    /// Predicted class per row (lazy tall n×1; one fused pass when
    /// materialized).
    pub fn predict(&self, x: &FM) -> FM {
        let p = self.means.cols();
        let k = self.k;
        // score_c(x) = Σⱼ x²·(−1/2σ²) + x·(μ/σ²) + (−μ²/2σ² − ½ln σ² + ln π)
        let b2 = Dense::from_fn(p, k, |j, c| -0.5 / self.vars.at(c, j));
        let b1 = Dense::from_fn(p, k, |j, c| self.means.at(c, j) / self.vars.at(c, j));
        let consts = Dense::from_fn(1, k, |_, c| {
            let mut acc = self.priors[c].max(1e-300).ln();
            for j in 0..p {
                let v = self.vars.at(c, j);
                acc += -0.5 * self.means.at(c, j) * self.means.at(c, j) / v - 0.5 * v.ln();
            }
            acc
        });
        let scores = x
            .square()
            .matmul(&FM::from_dense(b2))
            .binary(flashr_core::ops::BinaryOp::Add, &x.matmul(&FM::from_dense(b1)), false)
            .binary(flashr_core::ops::BinaryOp::Add, &FM::from_dense(consts), false);
        scores.row_which_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::accuracy;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
    }

    /// Two well-separated Gaussian classes.
    fn two_class(ctx: &FlashCtx, n: u64) -> (FM, FM) {
        let labels = FM::seq(n, 0.0, 1.0).binary_scalar(flashr_core::ops::BinaryOp::Rem, 2.0, false);
        let base = FM::rnorm(ctx, n, 3, 0.0, 1.0, 21);
        // Class 1 shifted by +4 in every dimension.
        let shift = &labels.cast(flashr_core::DType::F64) * 4.0;
        let x = base.binary(flashr_core::ops::BinaryOp::Add, &shift, false);
        (x, labels)
    }

    #[test]
    fn recovers_class_parameters() {
        let ctx = ctx();
        let (x, y) = two_class(&ctx, 20_000);
        let m = naive_bayes(&ctx, &x, &y, 2);
        assert!((m.priors[0] - 0.5).abs() < 0.01);
        for j in 0..3 {
            assert!(m.means.at(0, j).abs() < 0.05, "class0 mean {}", m.means.at(0, j));
            assert!((m.means.at(1, j) - 4.0).abs() < 0.05);
            assert!((m.vars.at(0, j) - 1.0).abs() < 0.1);
        }
    }

    #[test]
    fn predicts_separated_classes_accurately() {
        let ctx = ctx();
        let (x, y) = two_class(&ctx, 10_000);
        let m = naive_bayes(&ctx, &x, &y, 2);
        let pred = m.predict(&x);
        let acc = accuracy(&ctx, &pred, &y);
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn three_class_problem() {
        let ctx = ctx();
        let n = 9000u64;
        let labels =
            FM::seq(n, 0.0, 1.0).binary_scalar(flashr_core::ops::BinaryOp::Rem, 3.0, false);
        let base = FM::rnorm(&ctx, n, 2, 0.0, 0.5, 33);
        let shift = &labels.cast(flashr_core::DType::F64) * 5.0;
        let x = base.binary(flashr_core::ops::BinaryOp::Add, &shift, false);
        let m = naive_bayes(&ctx, &x, &labels, 3);
        let acc = accuracy(&ctx, &m.predict(&x), &labels);
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn training_is_single_pass() {
        let ctx = ctx();
        let (x, y) = two_class(&ctx, 4000);
        let before = ctx.stats().snapshot();
        let _ = naive_bayes(&ctx, &x, &y, 2);
        assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 1);
    }

    #[test]
    fn unbalanced_priors() {
        let ctx = ctx();
        let n = 10_000u64;
        // 90/10 split: label = 1 when seq % 10 == 0.
        let labels = FM::seq(n, 0.0, 1.0)
            .binary_scalar(flashr_core::ops::BinaryOp::Rem, 10.0, false)
            .eq(&FM::zeros(n, 1))
            .cast(flashr_core::DType::F64);
        let x = FM::rnorm(&ctx, n, 2, 0.0, 1.0, 8)
            .binary(flashr_core::ops::BinaryOp::Add, &(&labels * 6.0), false);
        let m = naive_bayes(&ctx, &x, &labels, 2);
        assert!((m.priors[0] - 0.9).abs() < 0.01);
        assert!((m.priors[1] - 0.1).abs() < 0.01);
    }
}
