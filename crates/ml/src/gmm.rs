//! Gaussian mixture models via EM (paper §4.1), full covariance.
//!
//! Each EM iteration is a single fused pass: the responsibilities
//! (including the log-sum-exp normalizer) form one DAG whose sinks are
//! the log-likelihood, the component masses `Nₖ = colSums(R)`, the
//! weighted means `Rᵀ X`, and one weighted Gramian per component —
//! exactly the O(n·p²·k) computation / O(n·p + n·k) I/O profile of the
//! paper's Table 4.

use flashr_core::fm::FM;
use flashr_core::ops::BinaryOp;
use flashr_core::session::FlashCtx;
use flashr_linalg::{chol_logdet, cholesky, solve_lower, Dense};

/// Options for [`gmm`].
#[derive(Debug, Clone)]
pub struct GmmOptions {
    /// Mixture components.
    pub k: usize,
    /// EM iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on the change of mean log-likelihood
    /// (paper: 1e-2).
    pub tol: f64,
    /// Covariance ridge keeping components positive definite.
    pub reg: f64,
    /// Seed for initial means (sampled rows).
    pub seed: u64,
}

impl Default for GmmOptions {
    fn default() -> Self {
        GmmOptions { k: 10, max_iters: 100, tol: 1e-2, reg: 1e-6, seed: 1 }
    }
}

/// Fitted mixture.
#[derive(Debug, Clone)]
pub struct GmmModel {
    /// Component weights (length k).
    pub weights: Vec<f64>,
    /// k×p component means.
    pub means: Dense,
    /// Per-component p×p covariance matrices.
    pub covs: Vec<Dense>,
    /// Final mean log-likelihood.
    pub loglike: f64,
    /// EM iterations run.
    pub iterations: usize,
}

/// Per-component log-density columns (lazy n×1 each):
/// `−½‖L⁻¹(x−μ)‖² − ½ ln|Σ| − (p/2) ln 2π + ln w`.
fn log_density_cols(x: &FM, model_means: &Dense, covs: &[Dense], weights: &[f64]) -> Vec<FM> {
    let p = x.ncol() as usize;
    let k = weights.len();
    let mut cols = Vec::with_capacity(k);
    for c in 0..k {
        let l = cholesky(&covs[c]).expect("component covariance must stay positive definite");
        // M = (L⁻¹)ᵀ so that Z = (X−μ) M has rows L⁻¹(x−μ).
        let linv = solve_lower(&l, &Dense::eye(p));
        let m = linv.transpose();
        let mu: Vec<f64> = (0..p).map(|j| model_means.at(c, j)).collect();
        let xc = x.sweep_cols(&mu, BinaryOp::Sub);
        let maha = xc.matmul(&FM::from_dense(m)).square().row_sums();
        let konst = -0.5 * chol_logdet(&l)
            - 0.5 * p as f64 * (2.0 * std::f64::consts::PI).ln()
            + weights[c].max(1e-300).ln();
        cols.push(&(&maha * -0.5) + konst);
    }
    cols
}

/// Fit a full-covariance Gaussian mixture with EM.
pub fn gmm(ctx: &FlashCtx, x: &FM, opts: &GmmOptions) -> GmmModel {
    let n = x.nrow();
    let p = x.ncol() as usize;
    let k = opts.k;
    assert!(k >= 1 && (k as u64) <= n);

    // Init: farthest-first over a hashed row sample (shared with k-means).
    let mut means = crate::util::farthest_first_init(ctx, x, k, opts.seed);
    let var0 = {
        let out = FM::materialize_multi(ctx, &[&x.col_sums(), &x.square().col_sums()]);
        let s = out[0].to_dense(ctx);
        let s2 = out[1].to_dense(ctx);
        let nn = n as f64;
        (0..p)
            .map(|j| (s2.at(0, j) / nn - (s.at(0, j) / nn).powi(2)).max(1e-6))
            .collect::<Vec<f64>>()
    };
    let mut covs: Vec<Dense> = (0..k)
        .map(|_| Dense::from_fn(p, p, |i, j| if i == j { var0[i] } else { 0.0 }))
        .collect();
    let mut weights = vec![1.0 / k as f64; k];

    let mut prev_ll = f64::NEG_INFINITY;
    let mut loglike = prev_ll;
    let mut iterations = 0;

    for _ in 0..opts.max_iters {
        iterations += 1;

        // E step (lazy): responsibilities through log-sum-exp.
        let logd_cols = log_density_cols(x, &means, &covs, &weights);
        let refs: Vec<&FM> = logd_cols.iter().collect();
        let logd = FM::cbind(&refs); // n×k
        let rowmax = logd.row_max(); // n×1
        let shifted = logd.binary(BinaryOp::Sub, &rowmax, false);
        let lse = &rowmax + &shifted.exp().row_sums().ln(); // n×1
        let resp = shifted
            .binary(BinaryOp::Sub, &lse.binary(BinaryOp::Sub, &rowmax, false), false)
            .exp(); // n×k

        // Sinks: log-likelihood, masses, weighted means, weighted Gramians.
        let ll_sink = lse.sum();
        let nk_sink = resp.col_sums();
        let wmean_sink = resp.crossprod_with(x); // k×p
        let gram_sinks: Vec<FM> = (0..k)
            .map(|c| {
                let wsqrt = resp.col(c).sqrt(); // n×1
                x.binary(BinaryOp::Mul, &wsqrt, false).crossprod()
            })
            .collect();
        let mut targets: Vec<&FM> = vec![&ll_sink, &nk_sink, &wmean_sink];
        targets.extend(gram_sinks.iter());
        let out = FM::materialize_multi(ctx, &targets);

        loglike = out[0].value(ctx) / n as f64;
        let nk = out[1].to_dense(ctx);
        let wmean = out[2].to_dense(ctx);

        // M step.
        for c in 0..k {
            let mass = nk.at(0, c).max(1e-12);
            weights[c] = mass / n as f64;
            for j in 0..p {
                means.set(c, j, wmean.at(c, j) / mass);
            }
            let g = out[3 + c].to_dense(ctx);
            covs[c] = Dense::from_fn(p, p, |i, j| {
                let v = g.at(i, j) / mass - means.at(c, i) * means.at(c, j);
                if i == j {
                    v + opts.reg
                } else {
                    v
                }
            });
        }

        if (loglike - prev_ll).abs() < opts.tol {
            break;
        }
        prev_ll = loglike;
    }

    GmmModel { weights, means, covs, loglike, iterations }
}

impl GmmModel {
    /// Hard component assignment per row (lazy n×1).
    pub fn predict(&self, x: &FM) -> FM {
        let cols = log_density_cols(x, &self.means, &self.covs, &self.weights);
        let refs: Vec<&FM> = cols.iter().collect();
        FM::cbind(&refs).row_which_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
    }

    fn two_blobs(ctx: &FlashCtx, n: u64) -> FM {
        let labels = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 2.0, false);
        let base = FM::rnorm(ctx, n, 2, 0.0, 0.7, 13);
        base.binary(BinaryOp::Add, &(&labels.cast(flashr_core::DType::F64) * 8.0), false)
    }

    #[test]
    fn recovers_two_components() {
        let ctx = ctx();
        let x = two_blobs(&ctx, 3000);
        let m = gmm(&ctx, &x, &GmmOptions { k: 2, max_iters: 50, seed: 2, ..Default::default() });
        let mut m0: Vec<f64> = (0..2).map(|c| m.means.at(c, 0)).collect();
        m0.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(m0[0].abs() < 0.4, "mean {}", m0[0]);
        assert!((m0[1] - 8.0).abs() < 0.4, "mean {}", m0[1]);
        assert!((m.weights[0] - 0.5).abs() < 0.1);
    }

    #[test]
    fn covariance_is_recovered() {
        let ctx = ctx();
        let x = two_blobs(&ctx, 6000);
        let m = gmm(&ctx, &x, &GmmOptions { k: 2, max_iters: 60, seed: 1, ..Default::default() });
        for c in 0..2 {
            // True per-component covariance is 0.49 I.
            assert!((m.covs[c].at(0, 0) - 0.49).abs() < 0.12, "var {}", m.covs[c].at(0, 0));
            assert!(m.covs[c].at(0, 1).abs() < 0.1);
        }
    }

    #[test]
    fn loglike_is_monotone_enough_and_converges() {
        let ctx = ctx();
        let x = two_blobs(&ctx, 2000);
        let m = gmm(&ctx, &x, &GmmOptions { k: 2, max_iters: 80, seed: 4, ..Default::default() });
        assert!(m.iterations < 80, "did not converge");
        assert!(m.loglike.is_finite());
    }

    #[test]
    fn predict_separates_blobs() {
        let ctx = ctx();
        let x = two_blobs(&ctx, 2000);
        let m = gmm(&ctx, &x, &GmmOptions { k: 2, max_iters: 50, seed: 2, ..Default::default() });
        let pred = m.predict(&x).to_vec(&ctx);
        // Points alternate blob membership (row % 2); predictions must be
        // consistent with that partition up to label swap.
        let mut agree = 0;
        for (r, v) in pred.iter().enumerate() {
            if (*v as usize) == (r % 2) {
                agree += 1;
            }
        }
        let frac = agree.max(2000 - agree) as f64 / 2000.0;
        assert!(frac > 0.99, "separation {frac}");
    }

    #[test]
    fn single_component_matches_moments() {
        let ctx = ctx();
        let x = FM::rnorm(&ctx, 8000, 2, 3.0, 2.0, 6);
        let m = gmm(&ctx, &x, &GmmOptions { k: 1, max_iters: 10, ..Default::default() });
        assert!((m.means.at(0, 0) - 3.0).abs() < 0.1);
        assert!((m.covs[0].at(0, 0) - 4.0).abs() < 0.25);
        assert!((m.weights[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_fused_pass_per_iteration() {
        let ctx = ctx();
        let x = two_blobs(&ctx, 1000).materialize(&ctx);
        let before = ctx.stats().snapshot();
        let m = gmm(&ctx, &x, &GmmOptions { k: 2, max_iters: 10, seed: 1, ..Default::default() });
        let passes = before.delta(&ctx.stats().snapshot()).passes;
        // One init pass (column moments) + one pass per EM iteration.
        assert_eq!(passes as usize, m.iterations + 1, "passes {passes}");
    }
}
