//! Logistic regression (paper §4.1): L-BFGS by default (what the paper
//! benchmarks) plus the gradient-descent-with-line-search variant of the
//! paper's Figure 2 example.
//!
//! Every iteration is one fused pass computing the loss and the gradient
//! together from the shared margin `X w`; line-search probes are
//! loss-only passes.

use crate::util::{dot, norm2};
use flashr_core::fm::FM;
use flashr_core::session::FlashCtx;
use flashr_linalg::Dense;

/// Options for logistic-regression training.
#[derive(Debug, Clone)]
pub struct LogRegOptions {
    /// Maximum outer iterations.
    pub max_iters: usize,
    /// Convergence threshold on `logloss_{i-1} − logloss_i`
    /// (paper: 1e-6).
    pub tol: f64,
    /// L-BFGS history length.
    pub history: usize,
}

impl Default for LogRegOptions {
    fn default() -> Self {
        LogRegOptions { max_iters: 100, tol: 1e-6, history: 5 }
    }
}

/// Trained model.
#[derive(Debug, Clone)]
pub struct LogRegModel {
    /// Feature weights (length p).
    pub weights: Vec<f64>,
    /// Final training log-loss.
    pub loss: f64,
    /// Iterations actually run.
    pub iterations: usize,
}

impl LogRegModel {
    /// Class probabilities (lazy n×1).
    pub fn predict_proba(&self, x: &FM) -> FM {
        let w = Dense::from_vec(self.weights.len(), 1, self.weights.clone());
        x.matmul(&FM::from_dense(w)).sigmoid()
    }

    /// Hard 0/1 predictions (lazy n×1).
    pub fn predict(&self, x: &FM) -> FM {
        self.predict_proba(&x.clone())
            .gt(&FM::constant(x.nrow(), 1, 0.5))
            .cast(flashr_core::DType::F64)
    }
}

/// Numerically stable softplus of a tall column: `ln(1 + e^m)`.
fn softplus(m: &FM) -> FM {
    let zeros = FM::zeros(m.nrow(), 1);
    m.pmax(&zeros).binary(
        flashr_core::ops::BinaryOp::Add,
        &(-&m.abs()).exp().log1p(),
        false,
    )
}

/// One fused pass: (logloss, gradient) at `w`.
fn loss_and_grad(ctx: &FlashCtx, x: &FM, y: &FM, w: &[f64]) -> (f64, Vec<f64>) {
    let n = x.nrow() as f64;
    let wd = Dense::from_vec(w.len(), 1, w.to_vec());
    let margin = x.matmul(&FM::from_dense(wd));
    // loss = Σ softplus(m) − y·m, grad = Xᵀ (σ(m) − y), both over one DAG.
    let loss_sink = softplus(&margin)
        .binary(flashr_core::ops::BinaryOp::Sub, &y.binary(flashr_core::ops::BinaryOp::Mul, &margin, false), false)
        .sum();
    let resid = margin.sigmoid().binary(flashr_core::ops::BinaryOp::Sub, y, false);
    let grad_sink = x.crossprod_with(&resid);
    let out = FM::materialize_multi(ctx, &[&loss_sink, &grad_sink]);
    let loss = out[0].value(ctx) / n;
    let g = out[1].to_dense(ctx);
    let grad: Vec<f64> = (0..w.len()).map(|j| g.at(j, 0) / n).collect();
    (loss, grad)
}

/// Loss-only pass (line-search probe).
fn loss_at(ctx: &FlashCtx, x: &FM, y: &FM, w: &[f64]) -> f64 {
    let n = x.nrow() as f64;
    let wd = Dense::from_vec(w.len(), 1, w.to_vec());
    let margin = x.matmul(&FM::from_dense(wd));
    let loss_sink = softplus(&margin)
        .binary(flashr_core::ops::BinaryOp::Sub, &y.binary(flashr_core::ops::BinaryOp::Mul, &margin, false), false)
        .sum();
    loss_sink.value(ctx) / n
}

/// L-BFGS training (the configuration the paper benchmarks).
pub fn logistic_regression(ctx: &FlashCtx, x: &FM, y: &FM, opts: &LogRegOptions) -> LogRegModel {
    let p = x.ncol() as usize;
    let mut w = vec![0.0; p];
    let (mut loss, mut grad) = loss_and_grad(ctx, x, y, &w);
    let mut s_hist: Vec<Vec<f64>> = Vec::new();
    let mut y_hist: Vec<Vec<f64>> = Vec::new();
    let mut iterations = 0;

    for _ in 0..opts.max_iters {
        iterations += 1;
        // Two-loop recursion for the search direction d = −H g.
        let mut q = grad.clone();
        let mut alphas = Vec::with_capacity(s_hist.len());
        for (s, yv) in s_hist.iter().zip(&y_hist).rev() {
            let rho = 1.0 / dot(yv, s);
            let alpha = rho * dot(s, &q);
            for (qi, yi) in q.iter_mut().zip(yv) {
                *qi -= alpha * yi;
            }
            alphas.push((rho, alpha));
        }
        if let (Some(s), Some(yv)) = (s_hist.last(), y_hist.last()) {
            let gamma = dot(s, yv) / dot(yv, yv).max(1e-300);
            for qi in q.iter_mut() {
                *qi *= gamma;
            }
        }
        for ((s, yv), (rho, alpha)) in s_hist.iter().zip(&y_hist).zip(alphas.into_iter().rev()) {
            let beta = rho * dot(yv, &q);
            for (qi, si) in q.iter_mut().zip(s) {
                *qi += (alpha - beta) * si;
            }
        }
        let dir: Vec<f64> = q.iter().map(|v| -v).collect();

        // Armijo backtracking.
        let dg = dot(&dir, &grad);
        let mut step = 1.0;
        let mut new_w;
        let mut new_loss;
        loop {
            new_w = w.iter().zip(&dir).map(|(wi, di)| wi + step * di).collect::<Vec<f64>>();
            new_loss = loss_at(ctx, x, y, &new_w);
            if new_loss <= loss + 1e-4 * step * dg || step < 1e-12 {
                break;
            }
            step *= 0.5;
        }

        let (_, new_grad) = loss_and_grad(ctx, x, y, &new_w);
        let s: Vec<f64> = new_w.iter().zip(&w).map(|(a, b)| a - b).collect();
        let yv: Vec<f64> = new_grad.iter().zip(&grad).map(|(a, b)| a - b).collect();
        if dot(&s, &yv) > 1e-12 {
            s_hist.push(s);
            y_hist.push(yv);
            if s_hist.len() > opts.history {
                s_hist.remove(0);
                y_hist.remove(0);
            }
        }
        let improvement = loss - new_loss;
        w = new_w;
        grad = new_grad;
        loss = new_loss;
        if improvement.abs() < opts.tol || norm2(&grad) < 1e-10 {
            break;
        }
    }
    LogRegModel { weights: w, loss, iterations }
}

/// Gradient descent with backtracking line search — the structure of the
/// paper's Figure 2 example.
pub fn logistic_regression_gd(ctx: &FlashCtx, x: &FM, y: &FM, opts: &LogRegOptions) -> LogRegModel {
    let p = x.ncol() as usize;
    let mut w = vec![0.0; p];
    let mut loss = loss_at(ctx, x, y, &w);
    let mut iterations = 0;
    for _ in 0..opts.max_iters {
        iterations += 1;
        let (_, grad) = loss_and_grad(ctx, x, y, &w);
        let delta = -0.5 * dot(&grad, &grad);
        let mut eta = 1.0;
        let mut new_w;
        let mut new_loss;
        loop {
            new_w = w.iter().zip(&grad).map(|(wi, gi)| wi - eta * gi).collect::<Vec<f64>>();
            new_loss = loss_at(ctx, x, y, &new_w);
            if new_loss <= loss + delta * eta || eta < 1e-12 {
                break;
            }
            eta *= 0.2; // the paper's shrink factor
        }
        let improvement = loss - new_loss;
        w = new_w;
        loss = new_loss;
        if improvement.abs() < opts.tol {
            break;
        }
    }
    LogRegModel { weights: w, loss, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::accuracy;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 512, ..Default::default() }, None)
    }

    fn dataset(ctx: &FlashCtx, n: u64, p: usize) -> (FM, FM, Vec<f64>) {
        let d = flashr_data_like(ctx, n, p);
        (d.0, d.1, d.2)
    }

    /// Local logistic ground-truth generator (avoids a circular crate
    /// dependency on flashr-data).
    fn flashr_data_like(ctx: &FlashCtx, n: u64, p: usize) -> (FM, FM, Vec<f64>) {
        let x = FM::rnorm(ctx, n, p, 0.0, 1.0, 7);
        let truth: Vec<f64> = (0..p).map(|j| if j % 2 == 0 { 1.0 } else { -0.5 }).collect();
        let w = Dense::from_vec(p, 1, truth.clone());
        let prob = x.matmul(&FM::from_dense(w)).sigmoid();
        let noise = FM::runif(ctx, n, 1, 0.0, 1.0, 99);
        let y = prob.gt(&noise).cast(flashr_core::DType::F64);
        (x, y, truth)
    }

    #[test]
    fn lbfgs_reduces_loss_below_chance() {
        let ctx = ctx();
        let (x, y, _) = dataset(&ctx, 5000, 4);
        let m = logistic_regression(&ctx, &x, &y, &LogRegOptions { max_iters: 30, ..Default::default() });
        assert!(m.loss < 0.6, "loss {}", m.loss); // ln 2 ≈ 0.693 is chance
        assert!(m.iterations >= 2);
    }

    #[test]
    fn recovers_weight_signs_and_magnitudes() {
        let ctx = ctx();
        let (x, y, truth) = dataset(&ctx, 20_000, 4);
        let m = logistic_regression(&ctx, &x, &y, &LogRegOptions::default());
        for (w, t) in m.weights.iter().zip(&truth) {
            assert!((w - t).abs() < 0.15, "weight {w} vs truth {t}");
        }
    }

    #[test]
    fn predictions_beat_chance_substantially() {
        let ctx = ctx();
        let (x, y, _) = dataset(&ctx, 10_000, 4);
        let m = logistic_regression(&ctx, &x, &y, &LogRegOptions::default());
        let acc = accuracy(&ctx, &m.predict(&x), &y);
        // Labels carry irreducible sigmoid noise; the Bayes rate for this
        // weight vector is ≈0.76.
        assert!(acc > 0.72, "accuracy {acc}");
    }

    #[test]
    fn gd_variant_converges_to_similar_loss() {
        let ctx = ctx();
        let (x, y, _) = dataset(&ctx, 5000, 3);
        let lbfgs = logistic_regression(&ctx, &x, &y, &LogRegOptions::default());
        let gd = logistic_regression_gd(
            &ctx,
            &x,
            &y,
            &LogRegOptions { max_iters: 200, tol: 1e-8, ..Default::default() },
        );
        assert!((gd.loss - lbfgs.loss).abs() < 5e-3, "gd {} vs lbfgs {}", gd.loss, lbfgs.loss);
    }

    #[test]
    fn loss_and_grad_agree_with_finite_differences() {
        let ctx = ctx();
        let (x, y, _) = dataset(&ctx, 2000, 3);
        let w = vec![0.3, -0.2, 0.1];
        let (_, grad) = loss_and_grad(&ctx, &x, &y, &w);
        let eps = 1e-5;
        for j in 0..3 {
            let mut wp = w.clone();
            wp[j] += eps;
            let mut wm = w.clone();
            wm[j] -= eps;
            let fd = (loss_at(&ctx, &x, &y, &wp) - loss_at(&ctx, &x, &y, &wm)) / (2.0 * eps);
            assert!((fd - grad[j]).abs() < 1e-5, "grad[{j}]: fd {fd} vs {g}", g = grad[j]);
        }
    }

    #[test]
    fn softplus_is_stable_for_large_margins() {
        let ctx = ctx();
        let m = FM::from_vec(&ctx, &[-800.0, 0.0, 800.0]);
        let s = softplus(&m).to_vec(&ctx);
        assert!(s[0].abs() < 1e-12);
        assert!((s[1] - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((s[2] - 800.0).abs() < 1e-9);
        assert!(s.iter().all(|v| v.is_finite()));
    }
}
