//! `mvrnorm` — multivariate normal sampling, MASS-style (paper §4.1 runs
//! the MASS implementation through FlashR).
//!
//! MASS draws through an eigendecomposition of the covariance:
//! `X = μ + Z V diag(√λ) Vᵀ` with `Z ~ N(0, I)`. The tall part is a lazy
//! `rnorm` followed by one tall×small multiply, so the whole sample is a
//! DAG that materializes in a single pass.

use flashr_core::fm::FM;
use flashr_core::ops::BinaryOp;
use flashr_core::session::FlashCtx;
use flashr_linalg::{eigen_sym, gemm, Dense};

/// Draw `n` samples from `N(mu, sigma)` as a lazy n×p matrix.
pub fn mvrnorm(ctx: &FlashCtx, n: u64, mu: &[f64], sigma: &Dense, seed: u64) -> FM {
    let p = mu.len();
    assert_eq!(sigma.rows(), p, "covariance shape mismatch");
    assert_eq!(sigma.cols(), p, "covariance must be square");
    let eig = eigen_sym(sigma);
    for &v in &eig.values {
        assert!(v > -1e-8 * eig.values[0].abs().max(1.0), "covariance is not PSD");
    }
    // B = V diag(√λ) Vᵀ (the symmetric square root, as MASS composes it).
    let mut vd = eig.vectors.clone();
    for r in 0..p {
        for c in 0..p {
            let v = vd.at(r, c) * eig.values[c].max(0.0).sqrt();
            vd.set(r, c, v);
        }
    }
    let mut b = Dense::zeros(p, p);
    gemm(1.0, &vd, false, &eig.vectors, true, 0.0, &mut b);

    let z = FM::rnorm(ctx, n, p, 0.0, 1.0, seed);
    z.matmul(&FM::from_dense(b)).sweep_cols(mu, BinaryOp::Add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 1024, ..Default::default() }, None)
    }

    #[test]
    fn marginal_moments_match() {
        let ctx = ctx();
        let sigma = Dense::from_vec(2, 2, vec![4.0, 1.5, 1.5, 1.0]);
        let mu = [10.0, -5.0];
        let x = mvrnorm(&ctx, 60_000, &mu, &sigma, 42);
        let means = x.col_means().to_vec(&ctx);
        assert!((means[0] - 10.0).abs() < 0.05, "mean0 {}", means[0]);
        assert!((means[1] + 5.0).abs() < 0.03, "mean1 {}", means[1]);
    }

    #[test]
    fn covariance_structure_matches() {
        let ctx = ctx();
        let sigma = Dense::from_vec(2, 2, vec![4.0, 1.5, 1.5, 1.0]);
        let x = mvrnorm(&ctx, 80_000, &[0.0, 0.0], &sigma, 7);
        let n = 80_000.0;
        let out = FM::materialize_multi(&ctx, &[&x.crossprod(), &x.col_sums()]);
        let g = out[0].to_dense(&ctx);
        let s = out[1].to_dense(&ctx);
        for i in 0..2 {
            for j in 0..2 {
                let cov = g.at(i, j) / n - s.at(0, i) / n * (s.at(0, j) / n);
                assert!((cov - sigma.at(i, j)).abs() < 0.06, "cov({i},{j}) = {cov}");
            }
        }
    }

    #[test]
    fn degenerate_covariance_collapses_direction() {
        let ctx = ctx();
        // Rank-1 covariance: all mass along (1, 1).
        let sigma = Dense::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let x = mvrnorm(&ctx, 10_000, &[0.0, 0.0], &sigma, 3);
        // x0 − x1 must be (numerically) zero for every sample.
        let diff = x.col(0).binary(BinaryOp::Sub, &x.col(1), false).abs().max_all().value(&ctx);
        assert!(diff < 1e-9, "rank-1 structure broken: {diff}");
    }

    #[test]
    fn sampling_is_lazy_until_materialized() {
        let ctx = ctx();
        let sigma = Dense::eye(3);
        let before = ctx.stats().snapshot();
        let x = mvrnorm(&ctx, 5000, &[0.0; 3], &sigma, 1);
        assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 0, "must be lazy");
        let _ = x.col_means().to_vec(&ctx);
        assert_eq!(before.delta(&ctx.stats().snapshot()).passes, 1);
    }

    #[test]
    #[should_panic]
    fn rejects_non_psd() {
        let ctx = ctx();
        let sigma = Dense::from_vec(2, 2, vec![1.0, 0.0, 0.0, -1.0]);
        let _ = mvrnorm(&ctx, 10, &[0.0, 0.0], &sigma, 1);
    }
}
