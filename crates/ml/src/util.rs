//! Shared helpers for the ML algorithms.

use flashr_core::fm::FM;
use flashr_core::session::FlashCtx;
use flashr_linalg::Dense;

/// Fraction of rows where `pred == truth` (both n×1).
pub fn accuracy(ctx: &FlashCtx, pred: &FM, truth: &FM) -> f64 {
    assert_eq!(pred.nrow(), truth.nrow(), "prediction/label length mismatch");
    let eq = pred.cast(flashr_core::DType::F64).eq(&truth.cast(flashr_core::DType::F64));
    eq.cast(flashr_core::DType::F64).mean_all().value(ctx)
}

/// Column `c` of a dense matrix as an owned vector.
pub fn dense_col(d: &Dense, c: usize) -> Vec<f64> {
    (0..d.rows()).map(|r| d.at(r, c)).collect()
}

/// Row `r` of a dense matrix as an owned vector.
pub fn dense_row(d: &Dense, r: usize) -> Vec<f64> {
    d.row(r).to_vec()
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Extract a set of rows as dense vectors, reading each I/O partition at
/// most once when the matrix is materialized.
pub fn sample_rows(ctx: &FlashCtx, x: &FM, rows: &[u64]) -> Vec<Vec<f64>> {
    let p = x.ncol() as usize;
    if let Some(mat) = x.leaf_mat_opt() {
        use std::collections::HashMap;
        let parter = mat.parter();
        let mut by_part: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &r) in rows.iter().enumerate() {
            by_part.entry(r / parter.rows_per_part()).or_default().push(i);
        }
        let mut out = vec![Vec::new(); rows.len()];
        let mut pool = flashr_core::chunk::BufPool::new();
        for (part, idxs) in by_part {
            let buf = mat.read_part(part);
            let part_rows = parter.part_rows(part, mat.nrows());
            let chunk = mat.pcache_chunk(&buf, part, 0, part_rows, &mut pool);
            for i in idxs {
                let local = (rows[i] - part * parter.rows_per_part()) as usize;
                out[i] = (0..p).map(|j| chunk.get_f64(local, j)).collect();
            }
        }
        out
    } else {
        rows.iter().map(|&r| (0..p).map(|j| x.get(ctx, r, j as u64)).collect()).collect()
    }
}

/// Pick `k` initial centers by farthest-first traversal over a hashed
/// candidate sample of rows (a cheap kmeans++-style init that avoids the
/// worst local optima of Lloyd/EM). Shared by k-means and GMM.
pub fn farthest_first_init(ctx: &FlashCtx, x: &FM, k: usize, seed: u64) -> Dense {
    let n = x.nrow();
    let p = x.ncol() as usize;
    let ncand = (k * 8).min(n as usize).max(k);
    let stride = (n / ncand as u64).max(1);
    let mut rows = Vec::with_capacity(ncand);
    for g in 0..ncand {
        let mut h = seed ^ (g as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        rows.push((g as u64 * stride + h % stride).min(n - 1));
    }
    let cands = sample_rows(ctx, x, &rows);
    let mut chosen: Vec<usize> = vec![0];
    let mut dist: Vec<f64> = cands
        .iter()
        .map(|c| c.iter().zip(&cands[0]).map(|(a, b)| (a - b) * (a - b)).sum())
        .collect();
    while chosen.len() < k {
        let (next, _) = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("candidates non-empty");
        chosen.push(next);
        for (i, c) in cands.iter().enumerate() {
            let d: f64 = c.iter().zip(&cands[next]).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < dist[i] {
                dist[i] = d;
            }
        }
    }
    Dense::from_fn(k, p, |g, j| cands[chosen[g]][j])
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::session::CtxConfig;

    #[test]
    fn accuracy_counts_matches() {
        let ctx = FlashCtx::with_config(CtxConfig { rows_per_part: 64, ..Default::default() }, None);
        let a = FM::from_vec(&ctx, &[1.0, 0.0, 1.0, 1.0]);
        let b = FM::from_vec(&ctx, &[1.0, 1.0, 1.0, 0.0]);
        assert_eq!(accuracy(&ctx, &a, &b), 0.5);
        assert_eq!(accuracy(&ctx, &a, &a), 1.0);
    }

    #[test]
    fn small_vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        let d = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(dense_col(&d, 1), vec![2.0, 4.0]);
        assert_eq!(dense_row(&d, 1), vec![3.0, 4.0]);
    }
}
