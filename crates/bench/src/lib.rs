//! Shared harness for the per-figure/per-table benchmark binaries.
//!
//! Every binary in `src/bin` regenerates one table or figure of the
//! FlashR paper's evaluation (§4). The harness provides:
//!
//! * [`Scale`] — workload sizing. Benchmarks default to a laptop-scale
//!   configuration that finishes in minutes; `--full` (or
//!   `FLASHR_BENCH_SCALE=full`) grows the workloads for server runs.
//! * context factories for the three execution configurations the paper
//!   compares (in-memory, external-memory with the local-server SSD
//!   profile, external-memory with the EC2 NVMe profile);
//! * timing, table printing, JSON result recording (under
//!   `target/flashr-results/`), and peak-RSS sampling for Table 6.

use flashr::prelude::*;
use serde::Serialize;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Workload sizing for the harness binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Finishes in minutes on a laptop (default).
    Quick,
    /// Larger runs for real hardware.
    Full,
}

impl Scale {
    /// Parse from argv/env (`--full` flag or `FLASHR_BENCH_SCALE=full`).
    pub fn from_env() -> Scale {
        let argv_full = std::env::args().any(|a| a == "--full");
        let env_full = std::env::var("FLASHR_BENCH_SCALE").map(|v| v == "full").unwrap_or(false);
        if argv_full || env_full {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Scale a quick-mode row count.
    pub fn rows(&self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The named argument after `--profile` (fig7: `local` or `ec2`).
pub fn profile_arg() -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--profile")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "local".to_string())
}

/// The path after `--trace-out`, if present: where the binary writes its
/// merged Chrome trace.
pub fn trace_out_arg() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

/// Trace level for the bench binaries: at least [`TraceLevel::Pass`] (the
/// artifacts embed pass profiles), raised to [`TraceLevel::Timeline`] when
/// a trace export was requested via `--trace-out` or `FLASHR_TRACE_OUT`,
/// or explicitly via `FLASHR_TRACE=timeline`.
pub fn bench_trace_level() -> TraceLevel {
    let mut level = TraceLevel::from_env().max(TraceLevel::Pass);
    let env_out = std::env::var_os("FLASHR_TRACE_OUT").is_some_and(|v| !v.is_empty());
    if trace_out_arg().is_some() || env_out {
        level = level.max(TraceLevel::Timeline);
    }
    level
}

/// Print one context's per-pass critical-path breakdown — the uniform
/// summary table every figure binary and `perf_probe` share.
pub fn print_critical_path(label: &str, report: &ProfileReport) {
    let table = report.critical_path_table();
    if table.is_empty() {
        return;
    }
    println!("\n[{label}] critical path:");
    print!("{table}");
    if report.dropped_events > 0 {
        println!("  ({} timeline events dropped over budget)", report.dropped_events);
    }
}

/// Export a merged Chrome trace covering every listed context, if an
/// output path was requested: `--trace-out <path>` wins, else the
/// process-wide `FLASHR_TRACE_OUT` claim (consumed here so the contexts'
/// own drop-exports don't overwrite the merged file). No-op when no
/// context carries a timeline.
pub fn maybe_export_trace(parts: &[(&str, &FlashCtx)]) {
    use flashr::core::trace::timeline::claim_trace_out;
    let tls: Vec<(&str, &Timeline)> = parts
        .iter()
        .filter_map(|(name, ctx)| ctx.tracer().timeline().map(|tl| (*name, tl.as_ref())))
        .collect();
    if tls.is_empty() {
        return;
    }
    let Some(path) = trace_out_arg().or_else(claim_trace_out) else { return };
    let json = flashr::core::trace::chrome::export_chrome_trace(&tls);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("chrome trace written to {} ({} bytes)", path.display(), json.len()),
        Err(e) => eprintln!("warning: could not write trace {}: {e}", path.display()),
    }
}

/// Fresh scratch directory for an emulated SSD array.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flashr-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// In-memory context sized for benchmarking. Traces at
/// [`bench_trace_level`] so every harness binary can print the per-pass
/// critical-path table and honour `--trace-out`.
pub fn im_ctx() -> FlashCtx {
    FlashCtx::in_memory().with_trace(bench_trace_level())
}

/// External-memory context with the local-server SSD-array profile
/// (paper §4: 24 SATA SSDs; scaled to 4 emulated devices here).
pub fn em_ctx_local(tag: &str) -> FlashCtx {
    let cfg = SafsConfig::striped_under(scratch_dir(tag), 4).with_throttle(ThrottleCfg::sata_ssd());
    FlashCtx::on_ssds(cfg).expect("SAFS open failed").with_trace(bench_trace_level())
}

/// Like [`em_ctx_local`], with a page cache in front of the SSD array
/// (capacity in bytes). Figure bins whose eager baseline re-scans EM
/// leaves across passes use this so the re-reads hit RAM — and the bin
/// stays clean under CI's `FLASHR_DENY_LINTS=W001,W004` gate (W004
/// fires when a re-scanned leaf exceeds the page-cache budget).
pub fn em_ctx_local_cached(tag: &str, cache_bytes: u64) -> FlashCtx {
    let cfg = SafsConfig::striped_under(scratch_dir(tag), 4)
        .with_throttle(ThrottleCfg::sata_ssd())
        .with_cache(CacheCfg::with_capacity(cache_bytes));
    FlashCtx::on_ssds(cfg).expect("SAFS open failed").with_trace(bench_trace_level())
}

/// External-memory context with the EC2 i3.16xlarge NVMe profile.
pub fn em_ctx_ec2(tag: &str) -> FlashCtx {
    let cfg = SafsConfig::striped_under(scratch_dir(tag), 4).with_throttle(ThrottleCfg::nvme_ssd());
    FlashCtx::on_ssds(cfg).expect("SAFS open failed").with_trace(bench_trace_level())
}

/// External-memory context with no throttle (raw host storage).
pub fn em_ctx_raw(tag: &str) -> FlashCtx {
    FlashCtx::on_ssds(SafsConfig::striped_under(scratch_dir(tag), 4))
        .expect("SAFS open failed")
        .with_trace(bench_trace_level())
}

/// Wall-clock one closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let v = f();
    (v, t.elapsed())
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`).
pub fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One timed stage of a probe binary, recorded into the machine-readable
/// `BENCH_<name>.json` artifact alongside the engine's profile report.
#[derive(Debug, Clone)]
pub struct BenchStage {
    pub name: String,
    pub wall_nanos: u64,
    pub gib_per_s: f64,
}

impl BenchStage {
    pub fn new(name: &str, wall: Duration, gib_per_s: f64) -> BenchStage {
        BenchStage { name: name.to_string(), wall_nanos: wall.as_nanos() as u64, gib_per_s }
    }
}

/// Serialize probe stages plus a [`ProfileReport`] into the artifact schema
/// shared by the probe binaries:
///
/// ```json
/// {"bench": "...", "stages": [{"name", "wall_nanos", "gib_per_s"}, ...],
///  "profile": {"exec": ..., "io": ..., "passes": [...]}}
/// ```
///
/// Built on the core's hand-rolled JSON (`ProfileReport::to_json`) so the
/// artifact stays byte-identical whether or not serde is in the build.
pub fn bench_artifact_json(bench: &str, stages: &[BenchStage], profile: &ProfileReport) -> String {
    bench_artifact_json_sections(bench, stages, profile, &[])
}

/// [`bench_artifact_json`] with extra top-level sections, each a
/// `(key, already-serialized JSON value)` pair — e.g. the static
/// analyzer's [`AnalysisReport::to_json`] under `"analysis"`.
pub fn bench_artifact_json_sections(
    bench: &str,
    stages: &[BenchStage],
    profile: &ProfileReport,
    sections: &[(&str, String)],
) -> String {
    use flashr::core::trace::json_escape;
    let mut out = String::with_capacity(4096);
    out.push_str("{\"bench\":");
    json_escape(bench, &mut out);
    out.push_str(",\"stages\":[");
    for (i, s) in stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_escape(&s.name, &mut out);
        out.push_str(",\"wall_nanos\":");
        out.push_str(&s.wall_nanos.to_string());
        out.push_str(",\"gib_per_s\":");
        // NaN/inf (zero-duration stages) are not valid JSON numbers.
        if s.gib_per_s.is_finite() {
            out.push_str(&format!("{:.3}", s.gib_per_s));
        } else {
            out.push_str("null");
        }
        out.push('}');
    }
    out.push_str("],\"profile\":");
    out.push_str(&profile.to_json());
    for (key, value) in sections {
        out.push_str(",\"");
        out.push_str(key);
        out.push_str("\":");
        out.push_str(value);
    }
    out.push('}');
    out
}

/// The `"host"` section for bench artifacts: the machine and build facts
/// needed to interpret absolute throughput numbers (and printed by
/// `scripts/bench_check` when a gate fails). Delegates to the core's
/// [`obs::host_json`](flashr::core::obs::host_json) — the same stamp the
/// profile history store writes — so `BENCH_*.json`, `perf_probe`,
/// `ablate` and `shard_sweep` can never drift from what the calibration
/// loop matches records by (cpus, workers, NUMA nodes, page-cache
/// capacity, build profile, SIMD level, storage backend, shard count).
pub fn host_section_json(ctx: &FlashCtx) -> String {
    flashr::core::obs::host_json(ctx)
}

/// Fetch this process's own `/metrics` endpoint — live only when the
/// context claimed `FLASHR_METRICS_ADDR` — and write the exposition to
/// `flashr-metrics.prom` in the current directory. CI validates that
/// file with `scripts/check_prometheus`. Returns the path written.
pub fn scrape_own_metrics(ctx: &FlashCtx) -> Option<PathBuf> {
    use std::io::{Read, Write};
    let addr = ctx.metrics_addr()?;
    let mut s = std::net::TcpStream::connect(addr).ok()?;
    write!(s, "GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n").ok()?;
    let mut resp = String::new();
    s.read_to_string(&mut resp).ok()?;
    if !resp.starts_with("HTTP/1.1 200") {
        eprintln!("warning: self-scrape returned {}", resp.lines().next().unwrap_or(""));
        return None;
    }
    let (_, body) = resp.split_once("\r\n\r\n")?;
    let path = PathBuf::from("flashr-metrics.prom");
    match std::fs::write(&path, body) {
        Ok(()) => {
            println!("metrics exposition written to {} ({} bytes)", path.display(), body.len());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Force a flight-recorder dump at bench exit when `FLASHR_FLIGHT_OUT`
/// is set, so CI archives a real dump as a workflow artifact even on a
/// healthy run.
pub fn maybe_dump_flight(ctx: &FlashCtx) {
    if std::env::var_os("FLASHR_FLIGHT_OUT").is_some_and(|v| !v.is_empty()) {
        let _ = ctx.flight_recorder().dump_now("bench-exit");
    }
}

/// Write `BENCH_<name>.json` into the current directory (CI smoke-runs
/// parse these) and return the path.
pub fn save_bench_artifact(name: &str, json: &str) -> PathBuf {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
    path
}

/// One-line summary of an [`ExecStatsSnapshot`] delta — the per-mode
/// counters that make the Fig. 10 base-vs-fused ablation observable.
pub fn exec_delta_line(d: &ExecStatsSnapshot) -> String {
    format!(
        "passes={} parts={} pcache_chunks={} numa_local/remote={}/{}",
        d.passes, d.parts, d.pcache_chunks, d.local_parts, d.remote_parts
    )
}

/// One-line SAFS I/O summary (volume, request counts, latency quantiles,
/// queue high-water) for an EM context's [`ProfileReport`].
pub fn io_summary_line(io: &flashr::safs::IoStatsSnapshot) -> String {
    let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
    format!(
        "io: read {:.2} GiB in {} reqs (p50<={}us p99<={}us), write {:.2} GiB in {} reqs, max queue depth {}",
        gib(io.read_bytes),
        io.read_reqs,
        io.read_lat.quantile_upper_ns(0.50) / 1_000,
        io.read_lat.quantile_upper_ns(0.99) / 1_000,
        gib(io.write_bytes),
        io.write_reqs,
        io.max_queue_depth
    )
}

/// One measured cell of a result table.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    pub experiment: String,
    pub algorithm: String,
    pub system: String,
    pub params: String,
    pub seconds: f64,
    pub extra: Option<f64>,
}

/// Accumulates rows, prints a formatted table, dumps JSON.
#[derive(Debug, Default)]
pub struct Report {
    pub rows: Vec<Measurement>,
}

impl Report {
    pub fn new() -> Report {
        Report::default()
    }

    pub fn push(&mut self, experiment: &str, algorithm: &str, system: &str, params: &str, seconds: f64) {
        self.rows.push(Measurement {
            experiment: experiment.into(),
            algorithm: algorithm.into(),
            system: system.into(),
            params: params.into(),
            seconds,
            extra: None,
        });
    }

    pub fn push_extra(
        &mut self,
        experiment: &str,
        algorithm: &str,
        system: &str,
        params: &str,
        seconds: f64,
        extra: f64,
    ) {
        self.rows.push(Measurement {
            experiment: experiment.into(),
            algorithm: algorithm.into(),
            system: system.into(),
            params: params.into(),
            seconds,
            extra: Some(extra),
        });
    }

    /// Normalized-runtime table per algorithm: every system's time divided
    /// by `baseline_system`'s time (the paper's Figures 7/8 format).
    pub fn print_normalized(&self, baseline_system: &str) {
        let mut algorithms: Vec<String> = Vec::new();
        let mut systems: Vec<String> = Vec::new();
        for r in &self.rows {
            if !algorithms.contains(&r.algorithm) {
                algorithms.push(r.algorithm.clone());
            }
            if !systems.contains(&r.system) {
                systems.push(r.system.clone());
            }
        }
        print!("{:<22}", "algorithm");
        for s in &systems {
            print!("{s:>16}");
        }
        println!();
        for a in &algorithms {
            let base = self
                .rows
                .iter()
                .find(|r| &r.algorithm == a && r.system == baseline_system)
                .map(|r| r.seconds);
            print!("{a:<22}");
            for s in &systems {
                match (self.rows.iter().find(|r| &r.algorithm == a && &r.system == s), base) {
                    (Some(r), Some(b)) if b > 0.0 => print!("{:>15.2}x", r.seconds / b),
                    (Some(r), _) => print!("{:>14.2}s ", r.seconds),
                    _ => print!("{:>16}", "-"),
                }
            }
            println!();
        }
    }

    /// Raw seconds per row.
    pub fn print_raw(&self) {
        println!(
            "{:<14} {:<22} {:<18} {:<24} {:>10}",
            "experiment", "algorithm", "system", "params", "seconds"
        );
        for r in &self.rows {
            println!(
                "{:<14} {:<22} {:<18} {:<24} {:>10.3}{}",
                r.experiment,
                r.algorithm,
                r.system,
                r.params,
                r.seconds,
                r.extra.map(|e| format!("  [{e:.3}]")).unwrap_or_default()
            );
        }
    }

    /// Write all rows as JSON under `target/flashr-results/<name>.json`.
    pub fn save_json(&self, name: &str) {
        let dir = PathBuf::from("target/flashr-results");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(&self.rows) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("\nresults written to {}", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialize results: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env() {
        // Default (no flag in the test binary's argv) is Quick.
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert_eq!(Scale::Quick.rows(10, 100), 10);
        assert_eq!(Scale::Full.rows(10, 100), 100);
    }

    #[test]
    fn peak_rss_reads_something() {
        assert!(peak_rss_bytes() > 0, "VmHWM should be readable on Linux");
    }

    #[test]
    fn bench_artifact_json_is_wellformed() {
        let ctx = FlashCtx::in_memory().with_trace(TraceLevel::Pass);
        let _ = FM::runif(&ctx, 256, 2, 0.0, 1.0, 7).sum().value(&ctx);
        let stages = vec![
            BenchStage::new("warm\"up", Duration::from_nanos(1_000), 1.25),
            BenchStage::new("degenerate", Duration::ZERO, f64::INFINITY),
        ];
        let json = bench_artifact_json("probe", &stages, &ctx.profile_report());
        assert!(json.starts_with("{\"bench\":\"probe\""));
        assert!(json.contains("\"name\":\"warm\\\"up\""));
        assert!(json.contains("\"gib_per_s\":null"), "non-finite rate must become null");
        assert!(json.contains("\"passes\":["));
        // Deep grammar validation lives in core's trace tests; here check
        // the nesting is balanced and the document closes cleanly.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.ends_with('}'));
    }

    #[test]
    fn report_collects_and_serializes() {
        let mut r = Report::new();
        r.push("fig7", "corr", "FlashR-IM", "n=100", 1.0);
        r.push("fig7", "corr", "MLlib-like", "n=100", 4.0);
        assert_eq!(r.rows.len(), 2);
        let json = serde_json::to_string(&r.rows).unwrap();
        assert!(json.contains("MLlib-like"));
    }
}
