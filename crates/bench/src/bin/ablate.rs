//! Engine-parameter ablations beyond the paper's Figure 10: sensitivity
//! of the cache-fuse engine to the Pcache budget, the I/O partition
//! height, and the worker thread count. These are the design constants
//! DESIGN.md fixes (256 KiB Pcache budget, 16384-row partitions); this
//! harness regenerates the evidence for those choices.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin ablate [-- --full]
//! ```
//!
//! `FLASHR_ABLATE_ONLY=<section>` restricts the run to a single sweep
//! (sections: pcache-budget, rows-per-part, threads, chain-len,
//! cache-size, cost-optimize, repeat) so CI can smoke one ablation
//! without paying for the full matrix.

use flashr::prelude::*;
use flashr_bench::*;

/// A deep per-iteration DAG (elementwise chain + Gramian + two sinks),
/// the workload class where cache residency matters.
fn workload(ctx: &FlashCtx, x: &FM) -> f64 {
    let y = &(&(x + 1.0) * 0.5).abs().sqrt() - 0.25;
    let out = FM::materialize_multi(ctx, &[&y.crossprod(), &y.sum(), &y.square().col_sums()]);
    out[1].value(ctx)
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.rows(1_000_000, 8_000_000);
    let p = 16usize;
    println!("Engine ablations (n = {n}, p = {p})\n");
    let mut report = Report::new();
    let only = std::env::var("FLASHR_ABLATE_ONLY").ok().filter(|s| !s.is_empty());
    let run_section = |name: &str| only.as_deref().is_none_or(|o| o == name);

    // ---------------------------------------------------- Pcache budget
    if run_section("pcache-budget") {
        println!("Pcache budget sweep (CacheFuse):");
        println!("{:>12} {:>10}", "budget", "seconds");
        for kib in [16usize, 64, 256, 1024, 4096, 16384] {
            let ctx = FlashCtx::with_config(
                CtxConfig { pcache_bytes: kib * 1024, ..Default::default() },
                None,
            );
            let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 3).materialize(&ctx);
            workload(&ctx, &x); // warm
            let (_, t) = time(|| workload(&ctx, &x));
            println!("{:>9}KiB {:>10.3}", kib, t.as_secs_f64());
            report.push("ablate", "pcache-budget", &format!("{kib}KiB"), "", t.as_secs_f64());
        }
    }

    // ------------------------------------------------- partition height
    if run_section("rows-per-part") {
        println!("\nI/O partition height sweep:");
        println!("{:>12} {:>10}", "rows/part", "seconds");
        for rows in [1024u64, 4096, 16384, 65536, 262144] {
            let ctx =
                FlashCtx::with_config(CtxConfig { rows_per_part: rows, ..Default::default() }, None);
            let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 3).materialize(&ctx);
            workload(&ctx, &x);
            let (_, t) = time(|| workload(&ctx, &x));
            println!("{rows:>12} {:>10.3}", t.as_secs_f64());
            report.push("ablate", "rows-per-part", &format!("{rows}"), "", t.as_secs_f64());
        }
    }

    // ----------------------------------------------------- thread count
    if run_section("threads") {
        let max_threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
        println!("\nworker thread sweep (host has {max_threads} CPUs):");
        println!("{:>12} {:>10} {:>10}", "threads", "seconds", "speedup");
        let mut base = None;
        let mut t_count = 1usize;
        while t_count <= max_threads * 2 {
            let ctx =
                FlashCtx::with_config(CtxConfig { nthreads: t_count, ..Default::default() }, None);
            let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 3).materialize(&ctx);
            workload(&ctx, &x);
            let (_, t) = time(|| workload(&ctx, &x));
            let secs = t.as_secs_f64();
            let b = *base.get_or_insert(secs);
            println!("{t_count:>12} {secs:>10.3} {:>9.2}x", b / secs);
            report.push("ablate", "threads", &format!("{t_count}"), "", secs);
            t_count *= 2;
        }
    }

    // ---------------------------------------------- map-chain length sweep
    // Chains of 1/4/16 alternating scalar ops feeding a sum, with chain
    // fusion on and off. Length 1 cannot fuse (both columns agree);
    // longer chains show the intermediate-chunk traffic fusion removes.
    if run_section("chain-len") {
        println!("\nmap-chain fusion sweep (alternating +0.5 / *0.99 ops):");
        println!("{:>12} {:>10} {:>11} {:>9}", "chain len", "fused s", "unfused s", "speedup");
        for len in [1usize, 4, 16] {
            let build = |x: &FM| {
                let mut cur = x.clone();
                for i in 0..len {
                    cur = if i % 2 == 0 { &cur + 0.5 } else { &cur * 0.99 };
                }
                cur
            };
            let mut secs = [0.0f64; 2];
            for (i, fuse) in [true, false].into_iter().enumerate() {
                let ctx = FlashCtx::with_config(
                    CtxConfig { fuse_chains: fuse, ..Default::default() },
                    None,
                );
                let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 3).materialize(&ctx);
                build(&x).sum().value(&ctx); // warm
                let (_, t) = time(|| build(&x).sum().value(&ctx));
                secs[i] = t.as_secs_f64();
                let label = format!("{len}-{}", if fuse { "fused" } else { "unfused" });
                report.push("ablate", "chain-len", &label, "", secs[i]);
            }
            println!("{len:>12} {:>10.3} {:>11.3} {:>8.2}x", secs[0], secs[1], secs[1] / secs[0]);
        }
    }

    // ------------------------------------------------ SA-cache size sweep
    // A 5-iteration KMeans-shaped workload (every iteration re-reads the
    // EM input in full). Cache size 0 is today's behavior — every
    // iteration pays full device I/O; a cache that holds the input makes
    // warm iterations near-zero device reads (ISSUE 3 acceptance).
    let n_em = scale.rows(100_000, 1_000_000);
    let data_bytes = n_em * p as u64 * 8;
    if run_section("cache-size") {
        println!("\nSA-cache size sweep (5-iteration EM re-scan, input {data_bytes} bytes):");
        println!("{:>12} {:>10} {:>12} {:>12} {:>9}", "cache", "seconds", "dev reads", "dev bytes", "hit rate");
        for (label, cache_bytes) in
            [("0", 0u64), ("half-input", data_bytes / 2), ("2x-input", data_bytes * 2)]
        {
            let dir = scratch_dir(&format!("ablate-cache-{label}"));
            let mut safs_cfg = SafsConfig::striped_under(&dir, 4);
            if cache_bytes > 0 {
                safs_cfg = safs_cfg.with_cache(CacheCfg::with_capacity(cache_bytes));
            }
            let safs = Safs::open(safs_cfg).expect("SAFS open failed");
            let ctx = FlashCtx::with_config(
                CtxConfig { storage: StorageClass::Em, ..Default::default() },
                Some(safs),
            );
            let x = FM::rnorm(&ctx, n_em, p, 0.0, 1.0, 3).materialize(&ctx);
            workload(&ctx, &x); // cold iteration warms the cache
            let before = ctx.safs().unwrap().stats_snapshot();
            let (_, t) = time(|| {
                for _ in 0..5 {
                    workload(&ctx, &x);
                }
            });
            let io = before.delta(&ctx.safs().unwrap().stats_snapshot());
            let lookups = io.cache.hits + io.cache.misses + io.cache.coalesced;
            let hit_rate =
                if lookups > 0 { io.cache.hits as f64 / lookups as f64 * 100.0 } else { 0.0 };
            println!(
                "{label:>12} {:>10.3} {:>12} {:>12} {hit_rate:>8.1}%",
                t.as_secs_f64(),
                io.read_reqs,
                io.read_bytes
            );
            report.push("ablate", "cache-size", label, "", t.as_secs_f64());
            report.push("ablate", "cache-size-reads", label, "", io.read_reqs as f64);
        }
    }

    // ------------------------------------------- cost-optimizer sweep
    // A reused intermediate feeds a reduction pass then a gramian
    // re-scan on an EM input larger than the page cache. Off: the
    // re-scan recomputes the intermediate from the device. On: the
    // W001 lint becomes an auto-cache decision and the re-scan reads
    // RAM — strictly fewer device bytes for the same results.
    if run_section("cost-optimize") {
        println!("\ncost-optimizer sweep (EM reuse + gramian re-scan, input {data_bytes} bytes):");
        println!("{:>12} {:>10} {:>14} {:>12}", "optimizer", "seconds", "dev bytes", "decisions");
        for opt in [false, true] {
            let label = if opt { "on" } else { "off" };
            let dir = scratch_dir(&format!("ablate-opt-{label}"));
            let safs_cfg = SafsConfig::striped_under(&dir, 4)
                .with_cache(CacheCfg::with_capacity(data_bytes / 4));
            let ctx = FlashCtx::with_config(
                CtxConfig {
                    storage: StorageClass::Em,
                    cost_optimize: opt,
                    mem_budget: Some(MemBudget::new(4 * data_bytes).with_cache_fraction(0.0)),
                    ..Default::default()
                },
                Some(Safs::open(safs_cfg).expect("SAFS open failed")),
            );
            let x = FM::rnorm(&ctx, n_em, p, 0.0, 1.0, 3).materialize(&ctx);
            let y = &(&(&x + 1.0) * 0.5).abs().sqrt() - 0.25;
            let before = ctx.safs().unwrap().stats_snapshot();
            let s0 = ctx.stats().snapshot();
            let (_, t) = time(|| {
                let _ = FM::materialize_multi(&ctx, &[&y.sum(), &y.square().col_sums()]);
                let _ = y.crossprod().to_dense(&ctx);
            });
            let io = before.delta(&ctx.safs().unwrap().stats_snapshot());
            let d = s0.delta(&ctx.stats().snapshot());
            println!(
                "{label:>12} {:>10.3} {:>14} {:>12}",
                t.as_secs_f64(),
                io.read_bytes,
                d.opt_decisions
            );
            report.push("ablate", "cost-optimize", label, "", t.as_secs_f64());
            report.push("ablate", "cost-optimize-read-bytes", label, "", io.read_bytes as f64);
        }
    }

    // --------------------------------------------- buffer-recycle check
    // Same DAG evaluated twice: the second run reuses pooled buffers; the
    // ratio is a proxy for allocator pressure the recycler removes.
    if run_section("repeat") {
        println!("\nrepeated-run stability (buffer recycling):");
        let ctx = FlashCtx::in_memory();
        let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 3).materialize(&ctx);
        let (_, cold) = time(|| workload(&ctx, &x));
        let (_, warm) = time(|| workload(&ctx, &x));
        println!("cold {:.3}s, warm {:.3}s", cold.as_secs_f64(), warm.as_secs_f64());
        report.push("ablate", "repeat", "cold", "", cold.as_secs_f64());
        report.push("ablate", "repeat", "warm", "", warm.as_secs_f64());
    }

    report.save_json("ablate");

    // Same host stamp perf_probe and shard_sweep embed in their
    // artifacts (one helper, no drift), so ablation rows can be matched
    // to the host/backend/simd they ran on. The in-memory context is the
    // honest default here: most sweeps above run without SAFS.
    let host = host_section_json(&FlashCtx::in_memory());
    println!("\nhost: {host}");
    let _ = std::fs::create_dir_all("target/flashr-results");
    if let Err(e) = std::fs::write("target/flashr-results/ablate-host.json", &host) {
        eprintln!("warning: could not write ablate-host.json: {e}");
    }
}
