//! Engine-parameter ablations beyond the paper's Figure 10: sensitivity
//! of the cache-fuse engine to the Pcache budget, the I/O partition
//! height, and the worker thread count. These are the design constants
//! DESIGN.md fixes (256 KiB Pcache budget, 16384-row partitions); this
//! harness regenerates the evidence for those choices.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin ablate [-- --full]
//! ```

use flashr::prelude::*;
use flashr_bench::*;

/// A deep per-iteration DAG (elementwise chain + Gramian + two sinks),
/// the workload class where cache residency matters.
fn workload(ctx: &FlashCtx, x: &FM) -> f64 {
    let y = &(&(x + 1.0) * 0.5).abs().sqrt() - 0.25;
    let out = FM::materialize_multi(ctx, &[&y.crossprod(), &y.sum(), &y.square().col_sums()]);
    out[1].value(ctx)
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.rows(1_000_000, 8_000_000);
    let p = 16usize;
    println!("Engine ablations (n = {n}, p = {p})\n");
    let mut report = Report::new();

    // ---------------------------------------------------- Pcache budget
    println!("Pcache budget sweep (CacheFuse):");
    println!("{:>12} {:>10}", "budget", "seconds");
    for kib in [16usize, 64, 256, 1024, 4096, 16384] {
        let ctx = FlashCtx::with_config(
            CtxConfig { pcache_bytes: kib * 1024, ..Default::default() },
            None,
        );
        let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 3).materialize(&ctx);
        workload(&ctx, &x); // warm
        let (_, t) = time(|| workload(&ctx, &x));
        println!("{:>9}KiB {:>10.3}", kib, t.as_secs_f64());
        report.push("ablate", "pcache-budget", &format!("{kib}KiB"), "", t.as_secs_f64());
    }

    // ------------------------------------------------- partition height
    println!("\nI/O partition height sweep:");
    println!("{:>12} {:>10}", "rows/part", "seconds");
    for rows in [1024u64, 4096, 16384, 65536, 262144] {
        let ctx = FlashCtx::with_config(CtxConfig { rows_per_part: rows, ..Default::default() }, None);
        let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 3).materialize(&ctx);
        workload(&ctx, &x);
        let (_, t) = time(|| workload(&ctx, &x));
        println!("{rows:>12} {:>10.3}", t.as_secs_f64());
        report.push("ablate", "rows-per-part", &format!("{rows}"), "", t.as_secs_f64());
    }

    // ----------------------------------------------------- thread count
    let max_threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    println!("\nworker thread sweep (host has {max_threads} CPUs):");
    println!("{:>12} {:>10} {:>10}", "threads", "seconds", "speedup");
    let mut base = None;
    let mut t_count = 1usize;
    while t_count <= max_threads * 2 {
        let ctx = FlashCtx::with_config(CtxConfig { nthreads: t_count, ..Default::default() }, None);
        let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 3).materialize(&ctx);
        workload(&ctx, &x);
        let (_, t) = time(|| workload(&ctx, &x));
        let secs = t.as_secs_f64();
        let b = *base.get_or_insert(secs);
        println!("{t_count:>12} {secs:>10.3} {:>9.2}x", b / secs);
        report.push("ablate", "threads", &format!("{t_count}"), "", secs);
        t_count *= 2;
    }

    // --------------------------------------------- buffer-recycle check
    // Same DAG evaluated twice: the second run reuses pooled buffers; the
    // ratio is a proxy for allocator pressure the recycler removes.
    println!("\nrepeated-run stability (buffer recycling):");
    let ctx = FlashCtx::in_memory();
    let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 3).materialize(&ctx);
    let (_, cold) = time(|| workload(&ctx, &x));
    let (_, warm) = time(|| workload(&ctx, &x));
    println!("cold {:.3}s, warm {:.3}s", cold.as_secs_f64(), warm.as_secs_f64());
    report.push("ablate", "repeat", "cold", "", cold.as_secs_f64());
    report.push("ablate", "repeat", "warm", "", warm.as_secs_f64());

    report.save_json("ablate");
}
