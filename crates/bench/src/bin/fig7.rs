//! Figure 7: normalized runtime of FlashR in memory (FlashR-IM) and on
//! SSDs (FlashR-EM) compared with per-operation-materializing execution
//! ("MLlib-like" — our Spark/H2O stand-in, same algorithms, eager
//! engine).
//!
//! The paper runs correlation, PCA, NaiveBayes and logistic regression on
//! Criteo-sub and k-means and GMM on PageGraph-32ev-sub. Profiles:
//!
//! * `--profile local` — the 48-core server with the SATA-SSD array
//!   throttle (Fig. 7a);
//! * `--profile ec2`   — the i3.16xlarge NVMe throttle (Fig. 7b).
//!
//! Expected shape (paper): FlashR-IM fastest; FlashR-EM within ~2× of IM
//! (closer under the NVMe profile); the eager comparator 3–20× slower.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin fig7 -- --profile local [--full]
//! ```

use flashr::baselines::eagerml;
use flashr::data::{criteo_like, pagegraph_like};
use flashr::ml::*;
use flashr::prelude::*;
use flashr_bench::*;

fn datasets(ctx: &FlashCtx, n_criteo: u64, n_page: u64) -> (FM, FM, FM) {
    let d = criteo_like(ctx, n_criteo, 40, 7);
    let x = d.x.materialize(ctx);
    let y = d.y.materialize(ctx);
    let pg = pagegraph_like(ctx, n_page, 32, 10, 5).x.materialize(ctx);
    (x, y, pg)
}

fn run_all(report: &mut Report, system: &str, ctx: &FlashCtx, n_criteo: u64, n_page: u64, eager: bool) {
    let (x, y, pg) = datasets(ctx, n_criteo, n_page);
    let params = format!("criteo n={n_criteo}, pagegraph n={n_page}");
    let lr_opts = LogRegOptions { max_iters: 10, tol: 1e-6, ..Default::default() };
    let km_opts = KmeansOptions { k: 10, max_iters: 8, seed: 1 };
    let gm_opts = GmmOptions { k: 10, max_iters: 4, tol: 1e-2, ..Default::default() };

    let (_, t) = time(|| if eager { eagerml::correlation_eager(ctx, &x) } else { correlation(ctx, &x) });
    report.push("fig7", "correlation", system, &params, t.as_secs_f64());
    println!("  {system:<14} correlation      {:>8.2}s", t.as_secs_f64());

    let (_, t) = time(|| if eager { eagerml::pca_eager(ctx, &x, 10) } else { pca(ctx, &x, 10) });
    report.push("fig7", "pca", system, &params, t.as_secs_f64());
    println!("  {system:<14} pca              {:>8.2}s", t.as_secs_f64());

    let (_, t) =
        time(|| if eager { eagerml::naive_bayes_eager(ctx, &x, &y, 2) } else { naive_bayes(ctx, &x, &y, 2) });
    report.push("fig7", "naive-bayes", system, &params, t.as_secs_f64());
    println!("  {system:<14} naive-bayes      {:>8.2}s", t.as_secs_f64());

    let (_, t) = time(|| {
        if eager {
            eagerml::logistic_regression_eager(ctx, &x, &y, &lr_opts)
        } else {
            logistic_regression(ctx, &x, &y, &lr_opts)
        }
    });
    report.push("fig7", "logistic-regression", system, &params, t.as_secs_f64());
    println!("  {system:<14} logreg           {:>8.2}s", t.as_secs_f64());

    let (_, t) = time(|| if eager { eagerml::kmeans_eager(ctx, &pg, &km_opts) } else { kmeans(ctx, &pg, &km_opts) });
    report.push("fig7", "kmeans", system, &params, t.as_secs_f64());
    println!("  {system:<14} kmeans           {:>8.2}s", t.as_secs_f64());

    let (_, t) = time(|| if eager { eagerml::gmm_eager(ctx, &pg, &gm_opts) } else { gmm(ctx, &pg, &gm_opts) });
    report.push("fig7", "gmm", system, &params, t.as_secs_f64());
    println!("  {system:<14} gmm              {:>8.2}s", t.as_secs_f64());
}

fn main() {
    let scale = Scale::from_env();
    let profile = profile_arg();
    let n_criteo = scale.rows(200_000, 4_000_000);
    let n_page = scale.rows(100_000, 2_000_000);

    println!("Figure 7{} — comparative performance ({profile} profile, {scale:?} scale)\n",
        if profile == "ec2" { "b" } else { "a" });

    let mut report = Report::new();

    println!("FlashR-IM:");
    let im = im_ctx();
    run_all(&mut report, "FlashR-IM", &im, n_criteo, n_page, false);

    println!("FlashR-EM:");
    let em = if profile == "ec2" { em_ctx_ec2("fig7") } else { em_ctx_local("fig7") };
    run_all(&mut report, "FlashR-EM", &em, n_criteo, n_page, false);

    println!("MLlib-like (eager per-op materialization, in memory):");
    let eager = im_ctx().with_mode(ExecMode::Eager);
    run_all(&mut report, "MLlib-like", &eager, n_criteo, n_page, true);

    println!("\nnormalized runtime (relative to FlashR-IM; paper Fig. 7):");
    report.print_normalized("FlashR-IM");
    print_critical_path("FlashR-IM", &im.profile_report());
    print_critical_path("FlashR-EM", &em.profile_report());
    print_critical_path("MLlib-like", &eager.profile_report());
    maybe_export_trace(&[("FlashR-IM", &im), ("FlashR-EM", &em), ("MLlib-like", &eager)]);
    report.save_json(&format!("fig7-{profile}"));
}
