//! Quick engine-throughput probe: per-stage timings for generation,
//! reduction, Gramian and fused elementwise chains. Used to sanity-check
//! that the engine saturates memory bandwidth before running the full
//! figure harnesses.
//!
//! Besides the human-readable table, the probe writes a machine-readable
//! `BENCH_perf_probe.json` into the current directory: per-stage name,
//! wall nanoseconds and GiB/s, plus the context's full profile report
//! (exec counters and per-pass worker/op profiles). The probe records at
//! least pass-level traces regardless of `FLASHR_TRACE`; setting
//! `FLASHR_TRACE=op` upgrades the artifact to per-node op timings.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin perf_probe
//! python3 -m json.tool BENCH_perf_probe.json
//! ```

use flashr::prelude::*;
use flashr_bench::{
    bench_artifact_json_sections, bench_trace_level, host_section_json, maybe_dump_flight,
    maybe_export_trace, print_critical_path, save_bench_artifact, scrape_own_metrics, scratch_dir,
    BenchStage,
};
use std::time::Instant;

fn main() {
    // Honour FLASHR_TRACE but never drop below Pass: the artifact's
    // pass-profile summary is the point of the probe. `--trace-out` or
    // `FLASHR_TRACE_OUT` raise it to timeline spans.
    let level = bench_trace_level();
    // Self-provision the profile history store when the caller didn't:
    // the calibration A/B below needs the records this run writes, and a
    // stable (non-pid) path lets consecutive probe runs accumulate the
    // history that `flashr-prof report`/`diff` and the calibrated arm
    // feed on.
    if std::env::var_os("FLASHR_PROFILE_DIR").is_none_or(|v| v.is_empty()) {
        std::env::set_var("FLASHR_PROFILE_DIR", std::env::temp_dir().join("flashr-profile"));
    }
    let store_dir = flashr::core::obs::store_dir().expect("profile store dir just set");
    println!(
        "profile store:       {} (run {})",
        store_dir.display(),
        flashr::core::obs::run_id()
    );
    let set_label = |l: &str| std::env::set_var("FLASHR_PROFILE_LABEL", l);
    set_label("perf_probe_main");
    // One-step construction (not `in_memory().with_trace(..)`): builder
    // methods make a throwaway context, and the first context to exist
    // claims `FLASHR_METRICS_ADDR` — the scrape listener must live on
    // this one for the self-scrape at the bottom.
    let ctx = FlashCtx::with_config(CtxConfig { trace: level, ..Default::default() }, None);
    let n = 2_000_000u64;
    let p = 16usize;
    let bytes = (n * p as u64 * 8) as f64;
    let gibps = |d: std::time::Duration| bytes / d.as_secs_f64() / (1u64 << 30) as f64;

    let mut stages: Vec<BenchStage> = Vec::new();
    let stage = |stages: &mut Vec<BenchStage>, label: &str, name: &str, d: std::time::Duration| {
        let g = gibps(d);
        println!("{label:<21}{d:>12.3?}  ({g:.2} GiB/s)");
        stages.push(BenchStage::new(name, d, g));
    };

    let t = Instant::now();
    let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 1).materialize(&ctx);
    stage(&mut stages, "rnorm materialize:", "rnorm_materialize", t.elapsed());

    let t = Instant::now();
    let _ = x.sum().value(&ctx);
    stage(&mut stages, "sum over leaf:", "sum_over_leaf", t.elapsed());

    let t = Instant::now();
    let _ = x.crossprod().to_dense(&ctx);
    stage(&mut stages, "crossprod over leaf:", "crossprod_over_leaf", t.elapsed());

    let t = Instant::now();
    let _ = ((&(&x + 1.0) * 2.0).abs().sqrt()).sum().value(&ctx);
    stage(&mut stages, "4-op chain sum:", "four_op_chain_sum", t.elapsed());

    // Map-chain fusion probe: the same 4-op elementwise chain
    // materialized with fusion on and off. The JSON section records the
    // chunk allocations and bytes each configuration moved plus a
    // bit-identity check — fused must be strictly lower and identical.
    let n_chain = 500_000u64;
    let p_chain = 8usize;
    let chain_bytes = (n_chain * p_chain as u64 * 8) as f64;
    let fused_ctx = FlashCtx::in_memory().with_trace(level);
    let unfused_ctx = fused_ctx.with_fuse_chains(false);
    let xc = FM::rnorm(&fused_ctx, n_chain, p_chain, 0.0, 1.0, 9).materialize(&fused_ctx);
    let chain = |x: &FM| (&(x * 2.0) + 1.0).abs().sqrt();

    // Measure steady state, not the first pass: early passes on a fresh
    // context absorb one-time process state (allocator growth, page
    // faults, empty partition-buffer pool), and whichever arm ran first
    // ate it — the committed baseline once showed "fused 2x slower"
    // purely from that ordering bias. Three warm passes let the
    // context's buffer recycler fill and the heap settle; the timed
    // figure is the best of three passes, which is what the engine
    // delivers once warm. Timing covers materialize only; the
    // single-threaded `to_vec` copy-out (used below for the
    // bit-identity check) would otherwise dominate both arms
    // identically and flatten the ratio. Stats deltas cover exactly one
    // pass so chunk counts stay comparable across runs.
    let steady = |ctx: &FlashCtx| {
        for _ in 0..3 {
            let _ = chain(&xc).materialize(ctx);
        }
        let before = ctx.stats().snapshot();
        let mut best = None;
        let mut mat = None;
        for i in 0..3 {
            let t = Instant::now();
            let m = chain(&xc).materialize(ctx);
            let d = t.elapsed();
            if i == 0 {
                best = Some((d, before.delta(&ctx.stats().snapshot())));
            }
            if let Some((b, _)) = &mut best {
                *b = (*b).min(d);
            }
            mat = Some(m);
        }
        let (d, delta) = best.expect("timed at least one pass");
        (d, delta, mat.expect("timed at least one pass"))
    };
    let (d_fused, delta_fused, mf) = steady(&fused_ctx);
    let vf = mf.to_vec(&fused_ctx);
    let (d_unfused, delta_unfused, mu) = steady(&unfused_ctx);
    let vu = mu.to_vec(&unfused_ctx);

    let bit_identical =
        vf.len() == vu.len() && vf.iter().zip(&vu).all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(bit_identical, "chain fusion changed the data");
    drop((vf, vu));
    let g = chain_bytes / d_fused.as_secs_f64() / (1u64 << 30) as f64;
    println!("map chain (fused):   {d_fused:>12.3?}  ({g:.2} GiB/s)");
    stages.push(BenchStage::new("map_chain_fused", d_fused, g));
    let g = chain_bytes / d_unfused.as_secs_f64() / (1u64 << 30) as f64;
    println!("map chain (unfused): {d_unfused:>12.3?}  ({g:.2} GiB/s)");
    stages.push(BenchStage::new("map_chain_unfused", d_unfused, g));
    println!(
        "map chain chunks:    {} fused vs {} unfused ({} B vs {} B)",
        delta_fused.node_chunks,
        delta_unfused.node_chunks,
        delta_fused.node_chunk_bytes,
        delta_unfused.node_chunk_bytes
    );
    // Stamp the Pcache step and readahead depth each configuration
    // actually ran with: the fused/unfused gap can only be interpreted
    // knowing whether both sides chunked the data identically.
    let last_step = |ctx: &FlashCtx| {
        ctx.tracer().passes().last().map(|p| p.pcache_step).unwrap_or(0)
    };
    let step_fused = last_step(&fused_ctx);
    let step_unfused = last_step(&unfused_ctx);
    let readahead = fused_ctx.safs().map(|s| s.readahead_parts()).unwrap_or(0);
    println!(
        "map chain pcache:    step {} fused vs {} unfused, readahead {} parts",
        step_fused, step_unfused, readahead
    );
    let mc = |d: &ExecStatsSnapshot| {
        format!(
            "{{\"node_chunks\":{},\"node_chunk_bytes\":{},\"fused_chains\":{},\"fused_saved_bytes\":{}}}",
            d.node_chunks, d.node_chunk_bytes, d.fused_chains, d.fused_saved_bytes
        )
    };
    let map_chain_section = format!(
        "{{\"fused\":{},\"unfused\":{},\"pcache_step_fused\":{step_fused},\
         \"pcache_step_unfused\":{step_unfused},\"readahead_parts\":{readahead},\
         \"bit_identical\":{bit_identical}}}",
        mc(&delta_fused),
        mc(&delta_unfused)
    );

    // Static-analyzer probe: a plan with a duplicated subexpression, run
    // through `FM::check` without executing. The report records node
    // counts before/after the CSE rewrite plus the footprint estimate.
    let shifted = &x + 1.0;
    let dup_plan = (&shifted.sqrt() + &shifted.sqrt()).sum();
    let analysis = dup_plan.check(&ctx).expect("probe plan must verify");
    println!(
        "analyzer:            {} nodes -> {} after CSE ({} merged, {} collapsed), \
         est. read {} MiB/pass",
        analysis.nodes_before,
        analysis.nodes_after,
        analysis.merged,
        analysis.collapsed,
        analysis.footprint.read_bytes >> 20
    );

    let u = FM::runif(&ctx, n, p, 0.0, 1.0, 2);
    let t = Instant::now();
    let _ = u.sum().value(&ctx);
    stage(&mut stages, "runif gen + sum:", "runif_gen_sum", t.elapsed());

    // SA-cache probe: an EM context whose page cache holds the input;
    // the cold scan pays device reads, the warm scan must be all hits.
    // The counters land in the artifact's "cache" section.
    let n_em = 500_000u64;
    let em_bytes = n_em * p as u64 * 8;
    let em_cfg = SafsConfig::striped_under(scratch_dir("perf-probe-cache"), 4)
        .with_cache(CacheCfg::with_capacity(2 * em_bytes));
    let em_ctx = FlashCtx::with_config(
        CtxConfig { storage: StorageClass::Em, trace: level, ..Default::default() },
        Some(Safs::open(em_cfg).expect("SAFS open failed")),
    );
    let xe = FM::rnorm(&em_ctx, n_em, p, 0.0, 1.0, 4).materialize(&em_ctx);
    let t = Instant::now();
    let cold_sum = xe.sum().value(&em_ctx);
    let cold = t.elapsed();
    println!("EM sum (cold cache): {cold:>12.3?}");
    let t = Instant::now();
    let warm_sum = xe.sum().value(&em_ctx);
    let warm = t.elapsed();
    let warm_gibps = em_bytes as f64 / warm.as_secs_f64() / (1u64 << 30) as f64;
    println!("EM sum (warm cache): {warm:>12.3?}  ({warm_gibps:.2} GiB/s)");
    stages.push(BenchStage::new("em_sum_warm_cache", warm, warm_gibps));
    assert!(cold_sum == warm_sum, "cache changed the data");
    let cache = em_ctx.safs().unwrap().stats_snapshot().cache;
    println!(
        "cache:               {} hits, {} misses, {} evictions, {} readahead",
        cache.hits, cache.misses, cache.evictions, cache.readahead_issued
    );
    let mut cache_section = String::new();
    flashr::core::trace::cache_json(&cache, &mut cache_section);

    // Cost-optimizer A/B probe: two EM workloads where a reused
    // intermediate feeds both a reduction pass and a later gramian
    // re-scan. With `cost_optimize` on, the W001 lint becomes an
    // auto-cache decision and the re-scan reads RAM instead of the
    // device; the section records device bytes per mode plus the
    // decision log (predicted vs. actual bytes) for bench_check to gate.
    let mut opt_workloads = String::from("[");
    let mut opt_dropped = 0u64;
    for (wi, (name, n_w, p_w, seed)) in
        [("reuse_rescan", 300_000u64, 16usize, 11u64), ("norm_rescan", 400_000, 8, 12)]
            .into_iter()
            .enumerate()
    {
        set_label(name);
        let mut per_mode = [String::new(), String::new()];
        let mut reads = [0u64; 2];
        let mut pass1_bits: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        let mut grams: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
        let mut decisions_json = String::from("[]");
        for (mi, cost_optimize) in [false, true].into_iter().enumerate() {
            let input_bytes = n_w * p_w as u64 * 8;
            let tag = format!("perf-probe-opt-{name}-{}", if cost_optimize { "on" } else { "off" });
            let opt_cfg = SafsConfig::striped_under(scratch_dir(&tag), 4)
                .with_cache(CacheCfg::with_capacity(input_bytes / 4));
            let octx = FlashCtx::with_config(
                CtxConfig {
                    storage: StorageClass::Em,
                    trace: level,
                    cost_optimize,
                    mem_budget: Some(MemBudget::new(4 * input_bytes).with_cache_fraction(0.0)),
                    ..Default::default()
                },
                Some(Safs::open(opt_cfg).expect("SAFS open failed")),
            );
            let xw = FM::rnorm(&octx, n_w, p_w, 0.0, 1.0, seed).materialize(&octx);
            let y = if wi == 0 {
                &(&xw * 2.0) + 1.0
            } else {
                (&xw + 3.0).abs().sqrt()
            };
            let io0 = octx.safs().unwrap().stats_snapshot();
            let s0 = octx.stats().snapshot();
            let t = Instant::now();
            let pass1 = FM::materialize_multi(&octx, &[&y.sum(), &y.col_sums()]);
            let gram = y.crossprod().to_dense(&octx);
            let wall = t.elapsed();
            let io = io0.delta(&octx.safs().unwrap().stats_snapshot());
            let d = s0.delta(&octx.stats().snapshot());
            let dropped = octx.profile_report().dropped_events;
            opt_dropped += dropped;
            reads[mi] = io.read_bytes;
            pass1_bits[mi].push(pass1[0].value(&octx).to_bits());
            pass1_bits[mi].extend(pass1[1].to_vec(&octx).iter().map(|v| v.to_bits()));
            for r in 0..p_w {
                for c in 0..p_w {
                    grams[mi].push(gram.at(r, c));
                }
            }
            per_mode[mi] = format!(
                "{{\"device_read_bytes\":{},\"wall_nanos\":{},\"opt_decisions\":{},\
                 \"opt_cache_bytes\":{},\"dropped_events\":{dropped}}}",
                io.read_bytes,
                wall.as_nanos(),
                d.opt_decisions,
                d.opt_cache_bytes
            );
            if cost_optimize {
                let mut dj = String::from("[");
                let mut first = true;
                for pass in octx.tracer().passes() {
                    for dec in &pass.optimizer {
                        if !first {
                            dj.push(',');
                        }
                        first = false;
                        dec.write_json(&mut dj);
                    }
                }
                dj.push(']');
                decisions_json = dj;
            }
        }
        // Pass 1 (reductions) must be bit-identical: the optimizer's
        // byproduct never changes the pass's chunking. The gramian runs
        // as a separate pass whose chunk height legitimately differs
        // once the reused node is cached, so it gets a relative bound.
        let sums_identical = pass1_bits[0] == pass1_bits[1];
        let gram_close = grams[0]
            .iter()
            .zip(&grams[1])
            .all(|(a, b)| (a - b).abs() <= 1e-12 * a.abs().max(1.0));
        assert!(sums_identical, "{name}: cost_optimize changed reduction results");
        assert!(gram_close, "{name}: cost_optimize changed the gramian past 1e-12");
        println!(
            "optimizer {name:<13} {:>12} B read (off) vs {:>12} B (on), saved {} B",
            reads[0],
            reads[1],
            reads[0].saturating_sub(reads[1])
        );
        if wi > 0 {
            opt_workloads.push(',');
        }
        opt_workloads.push_str(&format!(
            "{{\"name\":\"{name}\",\"off\":{},\"on\":{},\"read_bytes_saved\":{},\
             \"outputs_match\":{},\"decisions\":{decisions_json}}}",
            per_mode[0],
            per_mode[1],
            reads[0].saturating_sub(reads[1]),
            sums_identical && gram_close
        ));
    }
    opt_workloads.push(']');
    let optimizer_section =
        format!("{{\"workloads\":{opt_workloads},\"dropped_events\":{opt_dropped}}}");

    // Calibration A/B probe: the same two workload shapes as the
    // optimizer A/B, but as repeated scans under a page cache sized to
    // hold the whole input — the regime where the cost model's
    // cold-cache bound is systematically wrong (it predicts a full
    // device read for every scan; only the first one is). The first arm
    // (`calibrate` off) seeds the profile store with those raw
    // mispredictions; the second arm fits a per-fingerprint read factor
    // from that history at context build and must predict device reads
    // strictly better. Outputs stay bit-identical because calibration
    // only reprices the estimate, never changes the plan.
    let mut calib_workloads = String::from("[");
    for (wi, (name, n_w, p_w, seed)) in
        [("reuse_rescan", 200_000u64, 16usize, 21u64), ("norm_rescan", 240_000, 8, 22)]
            .into_iter()
            .enumerate()
    {
        set_label(&format!("calib_{name}"));
        let mut errs = [0u64; 2];
        let mut preds = [0u64; 2];
        let mut fitted = [false; 2];
        let mut scan_bits: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for (mi, calibrate) in [false, true].into_iter().enumerate() {
            let input_bytes = n_w * p_w as u64 * 8;
            let tag = format!("perf-probe-calib-{name}-{}", if calibrate { "on" } else { "off" });
            let opt_cfg = SafsConfig::striped_under(scratch_dir(&tag), 4)
                .with_cache(CacheCfg::with_capacity(2 * input_bytes));
            let octx = FlashCtx::with_config(
                CtxConfig {
                    storage: StorageClass::Em,
                    trace: level,
                    cost_optimize: true,
                    calibrate,
                    ..Default::default()
                },
                Some(Safs::open(opt_cfg).expect("SAFS open failed")),
            );
            let xw = FM::rnorm(&octx, n_w, p_w, 0.0, 1.0, seed).materialize(&octx);
            let y = if wi == 0 { &(&xw * 2.0) + 1.0 } else { (&xw + 3.0).abs().sqrt() };
            for _ in 0..3 {
                scan_bits[mi].push(y.sum().value(&octx).to_bits());
            }
            errs[mi] = octx.calib_state().mean_error_bytes();
            preds[mi] = octx.calib_state().predictions();
            fitted[mi] = octx.calibration().is_some();
        }
        let pass1_bits = scan_bits;
        let outputs_match = pass1_bits[0] == pass1_bits[1];
        assert!(outputs_match, "{name}: calibrate changed reduction results");
        assert!(fitted[1], "{name}: calibrated context found no usable history");
        println!(
            "calibration {name:<11} mean |pred-actual| {:>12} B (off) vs {:>12} B (on)",
            errs[0], errs[1]
        );
        if wi > 0 {
            calib_workloads.push(',');
        }
        calib_workloads.push_str(&format!(
            "{{\"name\":\"{name}\",\
             \"off\":{{\"mean_error_bytes\":{},\"predictions\":{},\"fitted\":{}}},\
             \"on\":{{\"mean_error_bytes\":{},\"predictions\":{},\"fitted\":{}}},\
             \"outputs_match\":{outputs_match}}}",
            errs[0], preds[0], fitted[0], errs[1], preds[1], fitted[1]
        ));
    }
    calib_workloads.push(']');
    set_label("perf_probe_main");
    let calibration_section = format!(
        "{{\"workloads\":{calib_workloads},\"store_dir\":{:?},\"run_id\":\"{}\",\
         \"dropped_records\":{}}}",
        store_dir.display().to_string(),
        flashr::core::obs::run_id(),
        flashr::core::obs::dropped_records()
    );

    let kernel_bw_section = kernel_bw_section();

    let report = ctx.profile_report();
    let host_section = host_section_json(&em_ctx);
    let sections = [
        ("analysis", analysis.to_json()),
        ("cache", cache_section),
        ("calibration", calibration_section),
        ("host", host_section),
        ("kernel_bw", kernel_bw_section),
        ("map_chain", map_chain_section),
        ("optimizer", optimizer_section),
    ];
    let path = save_bench_artifact(
        "perf_probe",
        &bench_artifact_json_sections("perf_probe", &stages, &report, &sections),
    );

    print_critical_path("main", &report);
    print_critical_path("map-chain fused", &fused_ctx.profile_report());
    print_critical_path("map-chain unfused", &unfused_ctx.profile_report());
    print_critical_path("em-cache", &em_ctx.profile_report());
    maybe_export_trace(&[
        ("main", &ctx),
        ("map-chain-fused", &fused_ctx),
        ("map-chain-unfused", &unfused_ctx),
        ("em-cache", &em_ctx),
    ]);

    // With FLASHR_METRICS_ADDR set, the main context bound the scrape
    // listener at startup; save one exposition for CI to validate. With
    // FLASHR_FLIGHT_OUT set, also force a flight dump for the artifact
    // upload.
    let _ = scrape_own_metrics(&ctx);
    maybe_dump_flight(&ctx);

    println!(
        "\n{} passes profiled (trace={level:?}); artifact written to {}",
        report.passes.len(),
        path.display()
    );
}

/// Single-core micro-kernel bandwidth at every SIMD dispatch level the
/// host supports: the fused 4-op map chain, sum/min reductions, dot and
/// the register-blocked gemm, each timed directly against the kernel
/// entry points (no executor, no I/O). The section lets `bench_check`
/// gate "avx2 beats off on every vectorized op" and gives absolute
/// throughput context for the stage-level numbers above.
///
/// Convention: elementwise/reduction rates are *input* GiB/s (matching
/// the stage table's `bytes / wall`); gemm reports GFLOP/s (`2mnk / t`).
fn kernel_bw_section() -> String {
    use flashr::core::chunk::{BufPool, Chunk};
    use flashr::core::ops::fused_map::{ChainLink, ChainOpSpec, ChainOperand, FusedMapKernel};
    use flashr::core::ops::simd::fold_col;
    use flashr::linalg::simd::dot_f64;
    use flashr::linalg::{gemm_strided_level, SimdLevel};
    use flashr::safs::IoBuf;
    use std::hint::black_box;

    // Time one op: warm + calibrate with a single run, then repeat long
    // enough (~50 ms) that timer noise is under a percent.
    fn time_op(mut f: impl FnMut()) -> f64 {
        let t = Instant::now();
        f();
        let once = t.elapsed().as_secs_f64().max(1e-9);
        let reps = (0.05 / once).ceil().max(1.0) as usize;
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        t.elapsed().as_secs_f64() / reps as f64
    }

    // Deterministic data; an LCG keeps the probe free of rand's state.
    let rows = 1usize << 16;
    let cols = 16usize;
    let n = rows * cols;
    let mut s = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let a: Vec<f64> = (0..n).map(|_| next()).collect();
    let b: Vec<f64> = (0..n).map(|_| next()).collect();

    // The probe's 4-op chain (`(x * 2 + 1).abs().sqrt()`) as chain links.
    let f64f64 = |op: ChainOpSpec| ChainLink { op, in_dtype: DType::F64, out_dtype: DType::F64 };
    let links = vec![
        f64f64(ChainOpSpec::Binary {
            op: BinaryOp::Mul,
            swapped: false,
            operand: ChainOperand::Scalar(Scalar::F64(2.0)),
        }),
        f64f64(ChainOpSpec::Binary {
            op: BinaryOp::Add,
            swapped: false,
            operand: ChainOperand::Scalar(Scalar::F64(1.0)),
        }),
        f64f64(ChainOpSpec::Unary(UnaryOp::Abs)),
        f64f64(ChainOpSpec::Unary(UnaryOp::Sqrt)),
    ];
    let base = Chunk::from_slice::<f64>(rows, cols, &a);
    let mut dst = IoBuf::zeroed(n * 8);
    let mut pool = BufPool::new();

    let gm = 256usize; // gemm is cubic: keep it small but register-bound
    let ga: Vec<f64> = (0..gm * gm).map(|_| next()).collect();
    let gb: Vec<f64> = (0..gm * gm).map(|_| next()).collect();
    let mut gc = vec![0.0f64; gm * gm];

    let levels = SimdLevel::available();
    let gib = (1u64 << 30) as f64;
    // (op name, unit, per-level (level name, throughput) figures).
    type OpRow = (&'static str, &'static str, Vec<(&'static str, f64)>);
    let mut ops: Vec<OpRow> = vec![
        ("map_chain", "GiB/s", Vec::new()),
        ("reduce_sum", "GiB/s", Vec::new()),
        ("reduce_min", "GiB/s", Vec::new()),
        ("dot", "GiB/s", Vec::new()),
        ("gemm", "GFLOP/s", Vec::new()),
    ];
    for &level in &levels {
        let kernel = FusedMapKernel::compile_with_level(level, &links);
        let t = time_op(|| {
            kernel.run_into(black_box(&base), &[], &mut dst, rows, 0, &mut pool);
            black_box(dst.as_bytes().first());
        });
        ops[0].2.push((level.name(), (n * 8) as f64 / t / gib));
        let t = time_op(|| {
            black_box(fold_col::<f64>(level, AggOp::Sum, 0.0, black_box(&a)));
        });
        ops[1].2.push((level.name(), (n * 8) as f64 / t / gib));
        let t = time_op(|| {
            black_box(fold_col::<f64>(level, AggOp::Min, f64::INFINITY, black_box(&a)));
        });
        ops[2].2.push((level.name(), (n * 8) as f64 / t / gib));
        let t = time_op(|| {
            black_box(dot_f64(level, black_box(&a), black_box(&b)));
        });
        ops[3].2.push((level.name(), (2 * n * 8) as f64 / t / gib));
        let t = time_op(|| {
            gemm_strided_level(
                level,
                gm,
                gm,
                gm,
                1.0,
                black_box(&ga),
                1,
                gm,
                black_box(&gb),
                1,
                gm,
                0.0,
                &mut gc,
                1,
                gm,
            );
            black_box(gc.first());
        });
        ops[4].2.push((level.name(), 2.0 * (gm * gm * gm) as f64 / t / 1e9));
    }

    let mut json = String::from("{\"levels\":[");
    for (i, l) in levels.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\"{}\"", l.name()));
    }
    json.push_str(&format!("],\"active\":\"{}\",\"ops\":[", SimdLevel::active().name()));
    for (i, (name, unit, vals)) in ops.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("{{\"name\":\"{name}\",\"unit\":\"{unit}\""));
        let mut line = format!("kernel {name:<11}");
        for (lname, v) in vals {
            json.push_str(&format!(",\"{lname}\":{v:.3}"));
            line.push_str(&format!("  {lname} {v:7.2}"));
        }
        println!("{line} {unit}");
        json.push('}');
    }
    json.push_str("]}");
    json
}
