//! Quick engine-throughput probe: per-stage timings for generation,
//! reduction, Gramian and fused elementwise chains. Used to sanity-check
//! that the engine saturates memory bandwidth before running the full
//! figure harnesses.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin perf_probe
//! ```

use flashr::prelude::*;
use std::time::Instant;

fn main() {
    let ctx = FlashCtx::in_memory();
    let n = 2_000_000u64;
    let p = 16usize;
    let bytes = (n * p as u64 * 8) as f64;
    let gibps = |d: std::time::Duration| bytes / d.as_secs_f64() / (1u64 << 30) as f64;

    let t = Instant::now();
    let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 1).materialize(&ctx);
    let d = t.elapsed();
    println!("rnorm materialize:   {d:>12.3?}  ({:.2} GiB/s)", gibps(d));

    let t = Instant::now();
    let _ = x.sum().value(&ctx);
    let d = t.elapsed();
    println!("sum over leaf:       {d:>12.3?}  ({:.2} GiB/s)", gibps(d));

    let t = Instant::now();
    let _ = x.crossprod().to_dense(&ctx);
    let d = t.elapsed();
    println!("crossprod over leaf: {d:>12.3?}  ({:.2} GiB/s)", gibps(d));

    let t = Instant::now();
    let _ = ((&(&x + 1.0) * 2.0).abs().sqrt()).sum().value(&ctx);
    let d = t.elapsed();
    println!("4-op chain sum:      {d:>12.3?}  ({:.2} GiB/s)", gibps(d));

    let u = FM::runif(&ctx, n, p, 0.0, 1.0, 2);
    let t = Instant::now();
    let _ = u.sum().value(&ctx);
    let d = t.elapsed();
    println!("runif gen + sum:     {d:>12.3?}  ({:.2} GiB/s)", gibps(d));
}
