//! Figure 8: FlashR-IM and FlashR-EM vs "Revolution R Open"-style
//! execution (single-threaded everything except BLAS) on the MASS-package
//! computations: `crossprod`, `correlation`, `mvrnorm` and `lda`.
//!
//! The paper uses n = 1M, p = 1000 on the 48-core server; quick mode
//! scales to n = 200k, p = 128 so the Jacobi eigensolver stays fast.
//!
//! Expected shape (paper): FlashR beats RRO by >10× on mvrnorm/LDA and
//! slightly on plain crossprod — parallelizing only the BLAS call is not
//! enough once the rest of the algorithm touches the data too.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin fig8 [-- --full]
//! ```

use flashr::baselines::rro;
use flashr::ml::{correlation, lda, mvrnorm};
use flashr::prelude::*;
use flashr_bench::*;

fn main() {
    let scale = Scale::from_env();
    let n = scale.rows(200_000, 1_000_000);
    let p = if scale == Scale::Quick { 128usize } else { 512 };
    let params = format!("n={n}, p={p}");
    println!("Figure 8 — FlashR vs Revolution-R-Open-style execution ({params})\n");

    let mut report = Report::new();

    // Shared inputs: a covariance for mvrnorm, labeled data for lda.
    let sigma = Dense::from_fn(p, p, |i, j| {
        if i == j {
            2.0
        } else {
            0.8f64.powi((i as i32 - j as i32).abs()) * 0.5
        }
    });
    let mu = vec![0.0; p];

    let mut traced: Vec<(String, FlashCtx)> = Vec::new();
    for (system, em) in [("FlashR-IM", false), ("FlashR-EM", true)] {
        let ctx = if em { em_ctx_local(&format!("fig8-{system}")) } else { im_ctx() };
        let x = FM::rnorm(&ctx, n, p, 0.0, 1.0, 11).materialize(&ctx);
        let labels = FM::seq(n, 0.0, 1.0)
            .binary_scalar(BinaryOp::Rem, 2.0, false)
            .materialize(&ctx);
        let xl = x
            .binary(BinaryOp::Add, &(&labels.cast(DType::F64) * 3.0), false)
            .materialize(&ctx);

        let (_, t) = time(|| x.crossprod().to_dense(&ctx));
        report.push("fig8", "crossprod", system, &params, t.as_secs_f64());
        println!("  {system:<12} crossprod  {:>8.2}s", t.as_secs_f64());

        let (_, t) = time(|| correlation(&ctx, &x));
        report.push("fig8", "correlation", system, &params, t.as_secs_f64());
        println!("  {system:<12} corr       {:>8.2}s", t.as_secs_f64());

        let (_, t) = time(|| mvrnorm(&ctx, n, &mu, &sigma, 3).col_sums().to_vec(&ctx));
        report.push("fig8", "mvrnorm", system, &params, t.as_secs_f64());
        println!("  {system:<12} mvrnorm    {:>8.2}s", t.as_secs_f64());

        let (_, t) = time(|| lda(&ctx, &xl, &labels, 2));
        report.push("fig8", "lda", system, &params, t.as_secs_f64());
        println!("  {system:<12} lda        {:>8.2}s", t.as_secs_f64());
        traced.push((system.to_string(), ctx));
    }

    // RRO model: dense in-memory, sequential except GEMM.
    {
        let ctx = im_ctx();
        let system = "RRO-like";
        let xf = FM::rnorm(&ctx, n, p, 0.0, 1.0, 11);
        let xd = xf.to_dense(&ctx);
        let labels: Vec<f64> = (0..n).map(|r| (r % 2) as f64).collect();
        let mut xld = xd.clone();
        for (r, &label) in labels.iter().enumerate() {
            if label > 0.5 {
                for v in xld.row_mut(r) {
                    *v += 3.0;
                }
            }
        }

        let (_, t) = time(|| rro::rro_crossprod(&xd));
        report.push("fig8", "crossprod", system, &params, t.as_secs_f64());
        println!("  {system:<12} crossprod  {:>8.2}s", t.as_secs_f64());

        let (_, t) = time(|| rro::rro_correlation(&xd));
        report.push("fig8", "correlation", system, &params, t.as_secs_f64());
        println!("  {system:<12} corr       {:>8.2}s", t.as_secs_f64());

        let (_, t) = time(|| rro::rro_mvrnorm(n as usize, &mu, &sigma, 3));
        report.push("fig8", "mvrnorm", system, &params, t.as_secs_f64());
        println!("  {system:<12} mvrnorm    {:>8.2}s", t.as_secs_f64());

        let (_, t) = time(|| rro::rro_lda(&xld, &labels, 2));
        report.push("fig8", "lda", system, &params, t.as_secs_f64());
        println!("  {system:<12} lda        {:>8.2}s", t.as_secs_f64());
    }

    println!("\nnormalized runtime (relative to FlashR-IM; paper Fig. 8):");
    report.print_normalized("FlashR-IM");
    for (name, ctx) in &traced {
        print_critical_path(name, &ctx.profile_report());
    }
    let parts: Vec<(&str, &FlashCtx)> = traced.iter().map(|(n, c)| (n.as_str(), c)).collect();
    maybe_export_trace(&parts);
    report.save_json("fig8");
}
