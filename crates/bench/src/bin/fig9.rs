//! Figure 9: relative runtime of FlashR in memory vs on SSDs while
//! varying the computation-to-I/O ratio.
//!
//! Left plot (paper): correlation and Naive Bayes on n = 100M with
//! p ∈ {8..512}. Right plot: k-means on n = 100M, p = 32 with
//! k ∈ {2..64}. Expected shape: the EM/IM ratio starts well above 1 at
//! small p (I/O bound: Naive Bayes, whose computation is O(n·p), never
//! closes the gap) and approaches 1 as p or k grows for correlation and
//! k-means, whose computation grows faster than their I/O.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin fig9 [-- --full]
//! ```

use flashr::data::pagegraph_like;
use flashr::ml::*;
use flashr::prelude::*;
use flashr_bench::*;

fn main() {
    let scale = Scale::from_env();
    let n = scale.rows(100_000, 2_000_000);
    println!("Figure 9 — IM vs EM ratio vs computation/I-O balance (n = {n})\n");

    let mut report = Report::new();
    let mut traced: Vec<(String, FlashCtx)> = Vec::new();
    let p_values: &[usize] = if scale == Scale::Quick { &[8, 32, 128, 256] } else { &[8, 32, 128, 512] };
    let k_values: &[usize] = &[2, 8, 32, 64];

    println!("{:<14} {:>6} {:>10} {:>10} {:>8}", "algorithm", "param", "IM (s)", "EM (s)", "EM/IM");

    for &p in p_values {
        let im = im_ctx();
        let em = em_ctx_local(&format!("fig9-p{p}"));
        let xi = FM::rnorm(&im, n, p, 0.0, 1.0, 7).materialize(&im);
        let xe = FM::rnorm(&em, n, p, 0.0, 1.0, 7).materialize(&em);
        let yi = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 2.0, false).materialize(&im);
        let ye = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 2.0, false).materialize(&em);

        let (_, ti) = time(|| correlation(&im, &xi));
        let (_, te) = time(|| correlation(&em, &xe));
        report.push_extra("fig9", "correlation", "EM/IM", &format!("p={p}"), te.as_secs_f64(), ti.as_secs_f64());
        println!(
            "{:<14} p={:<4} {:>10.2} {:>10.2} {:>8.2}",
            "correlation", p, ti.as_secs_f64(), te.as_secs_f64(),
            te.as_secs_f64() / ti.as_secs_f64()
        );

        let (_, ti) = time(|| naive_bayes(&im, &xi, &yi, 2));
        let (_, te) = time(|| naive_bayes(&em, &xe, &ye, 2));
        report.push_extra("fig9", "naive-bayes", "EM/IM", &format!("p={p}"), te.as_secs_f64(), ti.as_secs_f64());
        println!(
            "{:<14} p={:<4} {:>10.2} {:>10.2} {:>8.2}",
            "naive-bayes", p, ti.as_secs_f64(), te.as_secs_f64(),
            te.as_secs_f64() / ti.as_secs_f64()
        );
        traced.push((format!("IM-p{p}"), im));
        traced.push((format!("EM-p{p}"), em));
    }

    println!();
    let p = 32usize;
    for &k in k_values {
        let im = im_ctx();
        let em = em_ctx_local(&format!("fig9-k{k}"));
        let xi = pagegraph_like(&im, n, p, k.max(2), 3).x.materialize(&im);
        let xe = pagegraph_like(&em, n, p, k.max(2), 3).x.materialize(&em);
        let opts = KmeansOptions { k, max_iters: 4, seed: 1 };

        let (_, ti) = time(|| kmeans(&im, &xi, &opts));
        let (_, te) = time(|| kmeans(&em, &xe, &opts));
        report.push_extra("fig9", "kmeans", "EM/IM", &format!("k={k}"), te.as_secs_f64(), ti.as_secs_f64());
        println!(
            "{:<14} k={:<4} {:>10.2} {:>10.2} {:>8.2}",
            "kmeans", k, ti.as_secs_f64(), te.as_secs_f64(),
            te.as_secs_f64() / ti.as_secs_f64()
        );
        traced.push((format!("IM-k{k}"), im));
        traced.push((format!("EM-k{k}"), em));
    }

    // Per-context critical-path tables only for the EM side (the IM runs
    // are the denominators; their breakdowns are all-compute).
    for (name, ctx) in traced.iter().filter(|(n, _)| n.starts_with("EM")) {
        print_critical_path(name, &ctx.profile_report());
    }
    let parts: Vec<(&str, &FlashCtx)> = traced.iter().map(|(n, c)| (n.as_str(), c)).collect();
    maybe_export_trace(&parts);

    println!("\n(extra column of the JSON rows holds the IM seconds)");
    report.save_json("fig9");
}
