//! Figure 10: the optimization ablation, on SSDs.
//!
//! Three engine configurations, applied cumulatively over the "base"
//! implementation that materializes every matrix operation separately:
//!
//! * base        → `ExecMode::Eager` (per-op passes, intermediates on SSD)
//! * +mem-fuse   → `ExecMode::MemFuse` (one pass, whole-partition chain)
//! * +cache-fuse → `ExecMode::CacheFuse` (one pass, Pcache chain)
//!
//! The printed speedups are relative to base, matching the paper's bars.
//! Expected shape: mem-fuse gives the large win on every algorithm (it
//! removes the SSD round-trips); cache-fuse adds more on the algorithms
//! that are memory-bandwidth bound once I/O is gone.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin fig10 [-- --full]
//! ```

use flashr::data::{criteo_like, pagegraph_like};
use flashr::ml::*;
use flashr::prelude::*;
use flashr_bench::*;

fn main() {
    let scale = Scale::from_env();
    let n_criteo = scale.rows(100_000, 1_000_000);
    let n_page = scale.rows(50_000, 500_000);
    println!(
        "Figure 10 — engine ablation on SSDs (criteo n={n_criteo}, pagegraph n={n_page})\n"
    );

    let mut report = Report::new();
    let mut traced: Vec<(String, FlashCtx)> = Vec::new();
    let modes: [(&str, ExecMode); 3] = [
        ("base", ExecMode::Eager),
        ("mem-fuse", ExecMode::MemFuse),
        ("cache-fuse", ExecMode::CacheFuse),
    ];

    for (mode_name, mode) in modes {
        // Cost optimizer on for every arm (auto-cache/readahead apply
        // uniformly; the ablation compares engine modes), and a page
        // cache sized over the widest leaf so the eager baseline's
        // re-scans hit RAM. Both also keep the bin clean under CI's
        // `FLASHR_DENY_LINTS=W001,W004` gate: W001 nodes are fixed by
        // the optimizer (exempt), W004 needs the cache budget.
        let cache_bytes = 2 * n_criteo * 40 * 8;
        let em = em_ctx_local_cached(&format!("fig10-{mode_name}"), cache_bytes)
            .with_mode(mode)
            .with_cost_optimize(true);
        let d = criteo_like(&em, n_criteo, 40, 7);
        let x = d.x.materialize(&em);
        let y = d.y.materialize(&em);
        let pg = pagegraph_like(&em, n_page, 32, 10, 5).x.materialize(&em);
        let params = format!("mode={mode_name}");

        let (_, t) = time(|| correlation(&em, &x));
        report.push("fig10", "correlation", mode_name, &params, t.as_secs_f64());

        let (_, t) = time(|| pca(&em, &x, 10));
        report.push("fig10", "pca", mode_name, &params, t.as_secs_f64());

        let (_, t) = time(|| naive_bayes(&em, &x, &y, 2));
        report.push("fig10", "naive-bayes", mode_name, &params, t.as_secs_f64());

        let (_, t) = time(|| {
            logistic_regression(&em, &x, &y, &LogRegOptions { max_iters: 5, ..Default::default() })
        });
        report.push("fig10", "logistic-regression", mode_name, &params, t.as_secs_f64());

        let (_, t) = time(|| kmeans(&em, &pg, &KmeansOptions { k: 10, max_iters: 4, seed: 1 }));
        report.push("fig10", "kmeans", mode_name, &params, t.as_secs_f64());

        let (_, t) = time(|| {
            gmm(&em, &pg, &GmmOptions { k: 4, max_iters: 3, ..Default::default() })
        });
        report.push("fig10", "gmm", mode_name, &params, t.as_secs_f64());

        println!("{mode_name} done.");
        // Same per-pass critical-path table as perf_probe — the Fig. 10
        // story in wall-clock attribution: base is io-wait/write-stall
        // bound, the fused modes shift toward compute.
        print_critical_path(mode_name, &em.profile_report());
        traced.push((format!("fig10-{mode_name}"), em));
    }

    // Speedup over base per algorithm (the paper's bar heights).
    println!("\nspeedup over the base (per-op materializing) engine:");
    println!("{:<22} {:>12} {:>12}", "algorithm", "+mem-fuse", "+cache-fuse");
    let algos = ["correlation", "pca", "naive-bayes", "logistic-regression", "kmeans", "gmm"];
    for a in algos {
        let get = |sys: &str| {
            report
                .rows
                .iter()
                .find(|r| r.algorithm == a && r.system == sys)
                .map(|r| r.seconds)
                .unwrap_or(f64::NAN)
        };
        let base = get("base");
        println!(
            "{:<22} {:>11.2}x {:>11.2}x",
            a,
            base / get("mem-fuse"),
            base / get("cache-fuse")
        );
    }
    let parts: Vec<(&str, &FlashCtx)> = traced.iter().map(|(n, c)| (n.as_str(), c)).collect();
    maybe_export_trace(&parts);
    report.save_json("fig10");
}
