//! Table 5: the benchmark datasets. Prints the paper's dataset table
//! alongside the scaled synthetic equivalents this reproduction
//! generates, and materializes the scaled ones onto the emulated array
//! to report their on-SSD footprint.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin gen_data [-- --full]
//! ```

use flashr::data::{criteo_like, pagegraph_like, table5_shapes};

use flashr_bench::*;

fn main() {
    let scale = Scale::from_env();
    println!("Table 5 — benchmark datasets\n");
    println!("paper datasets:");
    println!("{:<24} {:>14} {:>8}", "dataset", "#rows", "#cols");
    for (name, rows, cols) in table5_shapes() {
        println!("{name:<24} {rows:>14} {cols:>8}");
    }

    let n_criteo = scale.rows(1_000_000, 100_000_000);
    let n_page = scale.rows(1_000_000, 80_000_000);
    println!("\nscaled synthetic equivalents ({scale:?} scale):");

    let em = em_ctx_raw("gen-data");
    let before = em.safs().unwrap().stats_snapshot();

    let (d, t) = time(|| {
        let d = criteo_like(&em, n_criteo, 40, 7);
        (d.x.materialize(&em), d.y.materialize(&em))
    });
    println!(
        "criteo-like          {n_criteo:>14} {:>8}   generated+written in {:.1}s",
        d.0.ncol(),
        t.as_secs_f64()
    );

    let (pg, t) = time(|| pagegraph_like(&em, n_page, 32, 10, 5).x.materialize(&em));
    println!(
        "pagegraph-like       {n_page:>14} {:>8}   generated+written in {:.1}s",
        pg.ncol(),
        t.as_secs_f64()
    );

    let io = before.delta(&em.safs().unwrap().stats_snapshot());
    println!(
        "\non-array footprint: {:.2} GiB written across {} requests",
        io.write_bytes as f64 / (1u64 << 30) as f64,
        io.write_reqs
    );
    println!("labels present in criteo-like: y ∈ {{0,1}}, balanced by the logistic ground truth");
}
