//! Table 4: computation and I/O complexity of the benchmark algorithms —
//! verified empirically.
//!
//! For each algorithm we measure runtime while doubling one parameter and
//! report the observed scaling exponent (log₂ of the runtime ratio).
//! Expected: correlation/PCA ≈ 2 in p; NaiveBayes/logreg ≈ 1 in p;
//! k-means ≈ 1 in k; everything ≈ 1 in n. I/O bytes (via the engine's
//! counters) scale linearly in n·p for all of them.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin table4 [-- --full]
//! ```

use flashr::data::pagegraph_like;
use flashr::ml::*;
use flashr::prelude::*;
use flashr_bench::*;

fn exponent(t_small: f64, t_big: f64) -> f64 {
    (t_big / t_small).log2()
}

fn main() {
    let scale = Scale::from_env();
    let n = scale.rows(200_000, 2_000_000);
    println!("Table 4 — empirical complexity exponents (n = {n})\n");
    let mut report = Report::new();

    // Scaling in p (double 64 → 128), iteration counts pinned.
    let (p1, p2) = (64usize, 128usize);
    let ctx = im_ctx();
    let x1 = FM::rnorm(&ctx, n, p1, 0.0, 1.0, 3).materialize(&ctx);
    let x2 = FM::rnorm(&ctx, n, p2, 0.0, 1.0, 3).materialize(&ctx);
    let y = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, 2.0, false).materialize(&ctx);

    println!("{:<22} {:>10} {:>12} {:>12} {:>16}", "algorithm", "axis", "t(small) s", "t(2x) s", "observed exp");

    let mut measure = |name: &str, axis: &str, expected: f64, ts: f64, tb: f64| {
        let e = exponent(ts, tb);
        println!("{name:<22} {axis:>10} {ts:>12.3} {tb:>12.3} {e:>10.2} (paper: {expected:.0})");
        report.push_extra("table4", name, axis, &format!("expected={expected}"), tb, e);
    };

    let (_, t1) = time(|| correlation(&ctx, &x1));
    let (_, t2) = time(|| correlation(&ctx, &x2));
    measure("correlation", "p", 2.0, t1.as_secs_f64(), t2.as_secs_f64());

    let (_, t1) = time(|| pca(&ctx, &x1, 4));
    let (_, t2) = time(|| pca(&ctx, &x2, 4));
    measure("pca", "p", 2.0, t1.as_secs_f64(), t2.as_secs_f64());

    let (_, t1) = time(|| naive_bayes(&ctx, &x1, &y, 2));
    let (_, t2) = time(|| naive_bayes(&ctx, &x2, &y, 2));
    measure("naive-bayes", "p", 1.0, t1.as_secs_f64(), t2.as_secs_f64());

    let lr = LogRegOptions { max_iters: 5, tol: 0.0, ..Default::default() };
    let (_, t1) = time(|| logistic_regression(&ctx, &x1, &y, &lr));
    let (_, t2) = time(|| logistic_regression(&ctx, &x2, &y, &lr));
    measure("logistic-regression", "p", 1.0, t1.as_secs_f64(), t2.as_secs_f64());

    // k-means in k (double 8 → 16) at fixed p.
    let xk = pagegraph_like(&ctx, n, 32, 8, 5).x.materialize(&ctx);
    let (_, t1) = time(|| kmeans(&ctx, &xk, &KmeansOptions { k: 8, max_iters: 3, seed: 1 }));
    let (_, t2) = time(|| kmeans(&ctx, &xk, &KmeansOptions { k: 16, max_iters: 3, seed: 1 }));
    measure("kmeans", "k", 1.0, t1.as_secs_f64(), t2.as_secs_f64());

    // GMM in k (double 2 → 4).
    let (_, t1) = time(|| gmm(&ctx, &xk, &GmmOptions { k: 2, max_iters: 2, ..Default::default() }));
    let (_, t2) = time(|| gmm(&ctx, &xk, &GmmOptions { k: 4, max_iters: 2, ..Default::default() }));
    measure("gmm", "k", 1.0, t1.as_secs_f64(), t2.as_secs_f64());

    // Scaling in n (half the rows) for one cheap and one expensive algo.
    let xh = FM::rnorm(&ctx, n / 2, p1, 0.0, 1.0, 3).materialize(&ctx);
    let (_, th) = time(|| correlation(&ctx, &xh));
    let (_, tf) = time(|| correlation(&ctx, &x1));
    measure("correlation", "n", 1.0, th.as_secs_f64(), tf.as_secs_f64());

    // I/O linearity in n·p, via an EM context's byte counters.
    println!("\nI/O bytes per pass (EM context; paper: O(n·p) for all):");
    let em = em_ctx_raw("table4");
    for p in [16usize, 32, 64] {
        let x = FM::rnorm(&em, n / 4, p, 0.0, 1.0, 1).materialize(&em);
        let before = em.safs().unwrap().stats_snapshot();
        let _ = correlation(&em, &x);
        let io = before.delta(&em.safs().unwrap().stats_snapshot());
        let expect = (n / 4) * p as u64 * 8;
        println!(
            "  p={p:<4} read {:>12} bytes (data size {expect:>12}, ratio {:.2})",
            io.read_bytes,
            io.read_bytes as f64 / expect as f64
        );
    }
    print_critical_path("table4-im", &ctx.profile_report());
    print_critical_path("table4-em", &em.profile_report());
    maybe_export_trace(&[("table4-im", &ctx), ("table4-em", &em)]);
    report.save_json("table4");
}
