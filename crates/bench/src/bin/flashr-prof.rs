//! `flashr-prof`: render and diff the profile history store.
//!
//! Every materialization run with `FLASHR_PROFILE_DIR` set appends one
//! JSONL record per pass group (see `flashr_core::obs`). This binary
//! turns that store into the two views the calibration loop's users
//! need:
//!
//! * `report` — the trajectory table: per workload (records grouped by
//!   their `FLASHR_PROFILE_LABEL`, falling back to plan fingerprint),
//!   one row per run with throughput, critical-path verdict, straggler
//!   count and device-read prediction error, each compared against a
//!   baseline run so verdict flips and throughput regressions stand
//!   out.
//! * `diff <run-a> <run-b>` — record-by-record deltas between two runs
//!   (matched by workload, fingerprint and ordinal), the per-category
//!   critical-path re-attribution of the wall-clock delta, and the
//!   engine counter deltas.
//!
//! ```text
//! flashr-prof report [--dir DIR] [--baseline RUN]
//! flashr-prof diff <run-a> <run-b> [--dir DIR]
//! flashr-prof runs [--dir DIR]
//! ```
//!
//! `--dir` defaults to `FLASHR_PROFILE_DIR`. Run ids may be abbreviated
//! to any unique prefix.

use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One store record, reduced to the fields the views consume.
#[derive(Debug, Clone)]
struct Rec {
    run: String,
    seq: u64,
    ts_ms: u64,
    label: String,
    fingerprint: String,
    op_class: String,
    mode: String,
    calibrate: bool,
    wall_nanos: u64,
    read_bytes: u64,
    write_bytes: u64,
    chunk_bytes: u64,
    pred_read_bytes: u64,
    source: String,
    bound: String,
    stragglers: u64,
    readahead_late: u64,
    compute_nanos: u64,
    io_wait_nanos: u64,
    write_stall_nanos: u64,
    idle_nanos: u64,
    exec_passes: u64,
    exec_parts: u64,
    exec_pcache_chunks: u64,
    exec_fused_chains: u64,
    decisions: u64,
}

impl Rec {
    /// Workload key: the bench label when one was stamped, else the
    /// plan fingerprint (shortened — it is already hex).
    fn workload(&self) -> String {
        if self.label.is_empty() {
            format!("fp:{}", &self.fingerprint[..self.fingerprint.len().min(12)])
        } else {
            self.label.clone()
        }
    }

    /// Bytes this materialization moved (device reads + writes + chunk
    /// production) — the numerator of the throughput column.
    fn moved_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes + self.chunk_bytes
    }
}

fn u(v: &Value, path: &[&str]) -> u64 {
    let mut cur = v;
    for k in path {
        match cur.get(*k) {
            Some(next) => cur = next,
            None => return 0,
        }
    }
    cur.as_u64().unwrap_or(0)
}

fn s(v: &Value, path: &[&str]) -> String {
    let mut cur = v;
    for k in path {
        match cur.get(*k) {
            Some(next) => cur = next,
            None => return String::new(),
        }
    }
    cur.as_str().unwrap_or("").to_string()
}

fn parse_rec(line: &str) -> Option<Rec> {
    let v: Value = serde_json::from_str(line).ok()?;
    if u(&v, &["v"]) != 1 {
        return None;
    }
    Some(Rec {
        run: s(&v, &["run"]),
        seq: u(&v, &["seq"]),
        ts_ms: u(&v, &["ts_ms"]),
        label: s(&v, &["label"]),
        fingerprint: s(&v, &["fingerprint"]),
        op_class: s(&v, &["op_class"]),
        mode: s(&v, &["mode"]),
        calibrate: v.get("calibrate").and_then(|b| b.as_bool()).unwrap_or(false),
        wall_nanos: u(&v, &["summary", "wall_nanos"]),
        read_bytes: u(&v, &["summary", "sum_read_bytes"]),
        write_bytes: u(&v, &["summary", "sum_write_bytes"]),
        chunk_bytes: u(&v, &["summary", "sum_chunk_bytes"]),
        pred_read_bytes: u(&v, &["summary", "sum_pred_read_bytes"]),
        source: s(&v, &["verdict", "source"]),
        bound: s(&v, &["verdict", "bound"]),
        stragglers: u(&v, &["verdict", "stragglers"]),
        readahead_late: u(&v, &["verdict", "readahead_late"]),
        compute_nanos: u(&v, &["verdict", "compute_nanos"]),
        io_wait_nanos: u(&v, &["verdict", "io_wait_nanos"]),
        write_stall_nanos: u(&v, &["verdict", "write_stall_nanos"]),
        idle_nanos: u(&v, &["verdict", "idle_nanos"]),
        exec_passes: u(&v, &["exec", "passes"]),
        exec_parts: u(&v, &["exec", "parts"]),
        exec_pcache_chunks: u(&v, &["exec", "pcache_chunks"]),
        exec_fused_chains: u(&v, &["exec", "fused_chains"]),
        decisions: v.get("decisions").and_then(|d| d.as_array()).map(|a| a.len() as u64).unwrap_or(0),
    })
}

/// Load every record in the store, in (run, seq) order. `skipped` counts
/// unparseable lines (foreign files, truncated writes).
fn load_store(dir: &Path) -> Result<(Vec<Rec>, usize), String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read profile store {}: {e}", dir.display()))?;
    let mut recs = Vec::new();
    let mut skipped = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("jsonl") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            skipped += 1;
            continue;
        };
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_rec(line) {
                Some(r) => recs.push(r),
                None => skipped += 1,
            }
        }
    }
    recs.sort_by(|a, b| (&a.run, a.seq).cmp(&(&b.run, b.seq)));
    Ok((recs, skipped))
}

/// Run ids ordered by each run's earliest record timestamp.
fn runs_by_start(recs: &[Rec]) -> Vec<String> {
    let mut start: BTreeMap<&str, u64> = BTreeMap::new();
    for r in recs {
        let e = start.entry(&r.run).or_insert(u64::MAX);
        *e = (*e).min(r.ts_ms);
    }
    let mut runs: Vec<(&str, u64)> = start.into_iter().collect();
    runs.sort_by_key(|&(run, ts)| (ts, run.to_string()));
    runs.into_iter().map(|(run, _)| run.to_string()).collect()
}

/// Resolve a (possibly abbreviated) run id against the store.
fn resolve_run(runs: &[String], pat: &str) -> Result<String, String> {
    if let Some(exact) = runs.iter().find(|r| r.as_str() == pat) {
        return Ok(exact.clone());
    }
    let hits: Vec<&String> = runs.iter().filter(|r| r.starts_with(pat)).collect();
    match hits.len() {
        1 => Ok(hits[0].clone()),
        0 => Err(format!(
            "run '{pat}' not found in store (known runs: {})",
            runs.join(", ")
        )),
        _ => Err(format!("run '{pat}' is ambiguous: {}", hits.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", "))),
    }
}

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 20) as f64
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

/// Per-(workload, run) aggregate for the trajectory table.
#[derive(Debug, Default, Clone)]
struct Agg {
    recs: u64,
    wall_nanos: u64,
    moved_bytes: u64,
    read_bytes: u64,
    pred_err_bytes: u64,
    stragglers: u64,
    readahead_late: u64,
    bound: String,
    calibrate: bool,
}

impl Agg {
    fn add(&mut self, r: &Rec) {
        self.recs += 1;
        self.wall_nanos += r.wall_nanos;
        self.moved_bytes += r.moved_bytes();
        self.read_bytes += r.read_bytes;
        self.pred_err_bytes += r.pred_read_bytes.abs_diff(r.read_bytes);
        self.stragglers += r.stragglers;
        self.readahead_late += r.readahead_late;
        // Last record's verdict stands for the run (workloads are
        // usually one record per run).
        self.bound = r.bound.clone();
        self.calibrate = r.calibrate;
    }

    fn throughput_gib_s(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        gib(self.moved_bytes) / (self.wall_nanos as f64 / 1e9)
    }

    fn mean_err_bytes(&self) -> u64 {
        if self.recs == 0 {
            0
        } else {
            self.pred_err_bytes / self.recs
        }
    }
}

/// `report`: one block per workload, one row per run, baselined.
fn report(dir: &Path, baseline: Option<&str>) -> Result<ExitCode, String> {
    let (recs, skipped) = load_store(dir)?;
    if recs.is_empty() {
        return Err(format!("profile store {} holds no records", dir.display()));
    }
    let runs = runs_by_start(&recs);
    let baseline = match baseline {
        Some(pat) => resolve_run(&runs, pat)?,
        None => runs[0].clone(),
    };
    // (workload → run → aggregate), workloads in first-seen order.
    let mut workloads: Vec<String> = Vec::new();
    let mut table: BTreeMap<(String, String), Agg> = BTreeMap::new();
    for r in &recs {
        let w = r.workload();
        if !workloads.contains(&w) {
            workloads.push(w.clone());
        }
        table.entry((w, r.run.clone())).or_default().add(r);
    }

    println!(
        "profile store: {} — {} records, {} runs, {} workloads (baseline {})",
        dir.display(),
        recs.len(),
        runs.len(),
        workloads.len(),
        baseline,
    );
    if skipped > 0 {
        println!("  ({skipped} unparseable lines skipped)");
    }

    let mut regressions = 0u64;
    let mut flips = 0u64;
    for w in &workloads {
        println!("\nworkload {w}");
        println!(
            "  {:<28} {:>5} {:>6} {:>9} {:<12} {:>10} {:>12}  {}",
            "run", "recs", "calib", "GiB/s", "bound", "straggler", "pred-err", "vs-baseline"
        );
        let base = table.get(&(w.clone(), baseline.clone())).cloned();
        for run in &runs {
            let Some(a) = table.get(&(w.clone(), run.clone())) else { continue };
            let vs = match (&base, run == &baseline) {
                (_, true) => "(baseline)".to_string(),
                (Some(b), false) if b.throughput_gib_s() > 0.0 => {
                    let delta =
                        100.0 * (a.throughput_gib_s() / b.throughput_gib_s() - 1.0);
                    let mut tag = format!("{delta:+.1}%");
                    if delta < -10.0 {
                        tag.push_str("  REGRESSION");
                        regressions += 1;
                    }
                    if b.bound != a.bound {
                        tag.push_str(&format!("  flip {}→{}", b.bound, a.bound));
                        flips += 1;
                    }
                    tag
                }
                _ => "(no baseline row)".to_string(),
            };
            println!(
                "  {:<28} {:>5} {:>6} {:>9.3} {:<12} {:>10} {:>9.1}MiB  {}",
                run,
                a.recs,
                if a.calibrate { "on" } else { "off" },
                a.throughput_gib_s(),
                a.bound,
                a.stragglers,
                mib(a.mean_err_bytes()),
                vs,
            );
        }
    }
    println!(
        "\nsummary: {} regression(s), {} verdict flip(s) across {} workload(s), {} run(s)",
        regressions,
        flips,
        workloads.len(),
        runs.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// `diff`: record-by-record deltas plus the critical-path
/// re-attribution of where the wall-clock delta went.
fn diff(dir: &Path, run_a: &str, run_b: &str) -> Result<ExitCode, String> {
    let (recs, _) = load_store(dir)?;
    if recs.is_empty() {
        return Err(format!("profile store {} holds no records", dir.display()));
    }
    let runs = runs_by_start(&recs);
    let run_a = resolve_run(&runs, run_a)?;
    let run_b = resolve_run(&runs, run_b)?;

    // Match records across the two runs by (workload, fingerprint,
    // ordinal) — the ordinal disambiguates a workload that materializes
    // the same plan several times.
    let mut a_by_key: BTreeMap<(String, String), Vec<&Rec>> = BTreeMap::new();
    let mut b_by_key: BTreeMap<(String, String), Vec<&Rec>> = BTreeMap::new();
    for r in &recs {
        let key = (r.workload(), r.fingerprint.clone());
        if r.run == run_a {
            a_by_key.entry(key).or_default().push(r);
        } else if r.run == run_b {
            b_by_key.entry(key).or_default().push(r);
        }
    }

    println!("diff {run_a} → {run_b}");
    println!(
        "{:<24} {:>3} {:<9} {:>10} {:>10} {:>8} {:>11} {:>11}  {}",
        "workload", "#", "class", "wall-a ms", "wall-b ms", "Δ%", "read ΔMiB", "chunk ΔMiB", "bound"
    );

    let (mut wall_a, mut wall_b) = (0u64, 0u64);
    let mut cat_a = [0u64; 4]; // compute, io-wait, write-stall, idle
    let mut cat_b = [0u64; 4];
    let mut exec_a = [0u64; 4]; // passes, parts, pcache_chunks, fused_chains
    let mut exec_b = [0u64; 4];
    let mut matched = 0usize;
    let mut flips = 0u64;
    let mut from_rows = 0usize;
    for (key, avs) in &a_by_key {
        let bvs = b_by_key.get(key).cloned().unwrap_or_default();
        for (i, ra) in avs.iter().enumerate() {
            let Some(rb) = bvs.get(i) else {
                println!(
                    "{:<24} {:>3} {:<9} {:>10.2} {:>10} only in {run_a}",
                    key.0, i, ra.op_class, ms(ra.wall_nanos), "-"
                );
                continue;
            };
            matched += 1;
            if ra.source == "critical-path" && rb.source == "critical-path" {
                from_rows += 1;
            }
            wall_a += ra.wall_nanos;
            wall_b += rb.wall_nanos;
            for (acc, r) in [(&mut cat_a, *ra), (&mut cat_b, *rb)] {
                acc[0] += r.compute_nanos;
                acc[1] += r.io_wait_nanos;
                acc[2] += r.write_stall_nanos;
                acc[3] += r.idle_nanos;
            }
            for (acc, r) in [(&mut exec_a, *ra), (&mut exec_b, *rb)] {
                acc[0] += r.exec_passes;
                acc[1] += r.exec_parts;
                acc[2] += r.exec_pcache_chunks;
                acc[3] += r.exec_fused_chains;
            }
            let pct = if ra.wall_nanos > 0 {
                100.0 * (rb.wall_nanos as f64 / ra.wall_nanos as f64 - 1.0)
            } else {
                0.0
            };
            let bound = if ra.bound == rb.bound {
                ra.bound.clone()
            } else {
                flips += 1;
                format!("{}→{} FLIP", ra.bound, rb.bound)
            };
            let dmib = |x: u64, y: u64| mib(y.max(x) - y.min(x)) * if y >= x { 1.0 } else { -1.0 };
            println!(
                "{:<24} {:>3} {:<9} {:>10.2} {:>10.2} {:>+7.1}% {:>+11.1} {:>+11.1}  {}",
                key.0,
                i,
                ra.op_class,
                ms(ra.wall_nanos),
                ms(rb.wall_nanos),
                pct,
                dmib(ra.read_bytes, rb.read_bytes),
                dmib(ra.chunk_bytes, rb.chunk_bytes),
                bound,
            );
        }
    }
    for (key, bvs) in &b_by_key {
        let have = a_by_key.get(key).map(|v| v.len()).unwrap_or(0);
        for (i, rb) in bvs.iter().enumerate().skip(have) {
            println!(
                "{:<24} {:>3} {:<9} {:>10} {:>10.2} only in {run_b}",
                key.0, i, rb.op_class, "-", ms(rb.wall_nanos)
            );
        }
    }
    if matched == 0 {
        return Err(format!("no records matched between {run_a} and {run_b}"));
    }

    // Re-attribute the wall delta: which critical-path category grew or
    // shrank, and how much of the total delta it explains.
    println!(
        "\ncritical-path re-attribution over {matched} matched record(s) \
         ({from_rows} from span rows, {} from the counter fallback):",
        matched - from_rows
    );
    println!(
        "  {:<12} {:>12} {:>12} {:>12} {:>8}",
        "category", "a (ms)", "b (ms)", "delta (ms)", "share"
    );
    let total_delta: i128 = (0..4)
        .map(|i| (cat_b[i] as i128 - cat_a[i] as i128).abs())
        .sum();
    for (i, name) in ["compute", "io-wait", "write-stall", "idle"].iter().enumerate() {
        let d = cat_b[i] as i128 - cat_a[i] as i128;
        let share = if total_delta > 0 {
            100.0 * d.unsigned_abs() as f64 / total_delta as f64
        } else {
            0.0
        };
        println!(
            "  {:<12} {:>12.2} {:>12.2} {:>+12.2} {:>7.1}%",
            name,
            ms(cat_a[i]),
            ms(cat_b[i]),
            d as f64 / 1e6,
            share
        );
    }
    println!(
        "  wall: {:.2} ms → {:.2} ms ({:+.1}%), {} verdict flip(s)",
        ms(wall_a),
        ms(wall_b),
        if wall_a > 0 { 100.0 * (wall_b as f64 / wall_a as f64 - 1.0) } else { 0.0 },
        flips,
    );
    println!("\nengine counter deltas (matched records):");
    for (i, name) in ["passes", "parts", "pcache_chunks", "fused_chains"].iter().enumerate() {
        println!("  {:<14} {:>10} → {:>10} ({:+})", name, exec_a[i], exec_b[i], exec_b[i] as i128 - exec_a[i] as i128);
    }
    Ok(ExitCode::SUCCESS)
}

/// `runs`: list what the store holds, one line per run.
fn list_runs(dir: &Path) -> Result<ExitCode, String> {
    let (recs, skipped) = load_store(dir)?;
    if recs.is_empty() {
        return Err(format!("profile store {} holds no records", dir.display()));
    }
    println!("{:<28} {:>6} {:>9} {:>8} {:>6} {:>6}  workloads", "run", "recs", "GiB", "calib", "modes", "decs");
    for run in runs_by_start(&recs) {
        let rs: Vec<&Rec> = recs.iter().filter(|r| r.run == run).collect();
        let mut workloads: Vec<String> = Vec::new();
        let mut modes: Vec<String> = Vec::new();
        for r in &rs {
            let w = r.workload();
            if !workloads.contains(&w) {
                workloads.push(w);
            }
            if !modes.contains(&r.mode) {
                modes.push(r.mode.clone());
            }
        }
        println!(
            "{:<28} {:>6} {:>9.3} {:>8} {:>6} {:>6}  {}",
            run,
            rs.len(),
            gib(rs.iter().map(|r| r.moved_bytes()).sum()),
            if rs.iter().any(|r| r.calibrate) { "on" } else { "off" },
            modes.len(),
            rs.iter().map(|r| r.decisions).sum::<u64>(),
            workloads.join(","),
        );
    }
    if skipped > 0 {
        println!("({skipped} unparseable lines skipped)");
    }
    Ok(ExitCode::SUCCESS)
}

const USAGE: &str = "usage:
  flashr-prof report [--dir DIR] [--baseline RUN]
  flashr-prof diff <run-a> <run-b> [--dir DIR]
  flashr-prof runs [--dir DIR]
DIR defaults to $FLASHR_PROFILE_DIR; run ids accept unique prefixes.";

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = arg_after(&args, "--dir")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("FLASHR_PROFILE_DIR").filter(|v| !v.is_empty()).map(PathBuf::from));
    let Some(dir) = dir else {
        eprintln!("flashr-prof: no store directory (pass --dir or set FLASHR_PROFILE_DIR)\n{USAGE}");
        return ExitCode::from(2);
    };
    // Positional args: everything not a flag or a flag's value.
    let mut positional: Vec<&String> = Vec::new();
    let mut skip = false;
    for a in &args {
        if skip {
            skip = false;
            continue;
        }
        if a == "--dir" || a == "--baseline" {
            skip = true;
            continue;
        }
        if !a.starts_with("--") {
            positional.push(a);
        }
    }
    let result = match positional.first().map(|s| s.as_str()) {
        Some("report") => report(&dir, arg_after(&args, "--baseline").as_deref()),
        Some("diff") => match (positional.get(1), positional.get(2)) {
            (Some(a), Some(b)) => diff(&dir, a, b),
            _ => Err(format!("diff needs two run ids\n{USAGE}")),
        },
        Some("runs") => list_runs(&dir),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("flashr-prof: {msg}");
            ExitCode::from(2)
        }
    }
}
