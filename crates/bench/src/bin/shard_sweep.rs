//! Shard-sweep microbenchmark: aggregate EM scan throughput as the SAFS
//! array grows from 1 to 4 simulated devices, for both storage backends.
//!
//! Each cell of the sweep opens a fresh striped runtime (`striped_under`,
//! N shards), materializes a tall uniform matrix onto it, then times two
//! full `sum()` scans with no page cache — every read goes to a device
//! queue. With the SATA-class throttle each simulated shard caps at the
//! same per-device bandwidth, so aggregate read throughput must rise
//! monotonically with the shard count (the paper's Figure 6 shape); the
//! unthrottled direct backend rows show the raw thread-pool ceiling for
//! comparison and carry no monotonic expectation.
//!
//! Artifacts: `BENCH_shard_sweep.json` (a `"sweep"` section with one row
//! per cell, including per-shard request/byte/queue-depth deltas so CI
//! can assert the stripe stays balanced), `flashr-results-shard_sweep.json`,
//! `flashr-metrics.prom` (per-shard series from the final 4-shard cell),
//! and a Chrome trace with one `safs-sim-s<shard>t<n>` lane group per
//! shard when `FLASHR_TRACE_OUT` is set.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin shard_sweep
//! FLASHR_SCALE=full cargo run --release -p flashr-bench --bin shard_sweep
//! ```

use flashr::prelude::*;
use flashr::safs::{BackendKind, ShardStatsSnapshot};
use flashr_bench::{
    bench_artifact_json_sections, bench_trace_level, host_section_json, io_summary_line,
    maybe_dump_flight, maybe_export_trace, print_critical_path, save_bench_artifact,
    scrape_own_metrics, scratch_dir, time, BenchStage, Report, Scale,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Scans per cell: the timed window covers both, halving jitter from a
/// cold first pass without inflating quick-mode runtime.
const SCANS: u64 = 2;

struct Cell {
    backend: BackendKind,
    shards: usize,
    secs: f64,
    read_gbps: f64,
    read_bytes: u64,
    per_shard: Vec<ShardStatsSnapshot>,
}

fn run_cell(
    backend: BackendKind,
    shards: usize,
    rows: u64,
    cols: u64,
    level: TraceLevel,
) -> (Cell, FlashCtx) {
    let tag = format!("shard-sweep-{}-{}", backend.as_str(), shards);
    let cfg = SafsConfig::striped_under(scratch_dir(&tag), shards)
        .with_throttle(ThrottleCfg::sata_ssd())
        .with_backend(backend);
    let safs = Safs::open(cfg).expect("open striped SAFS");
    // One-step construction: the first context to exist claims
    // `FLASHR_METRICS_ADDR`, so no builder-style throwaway contexts here.
    let ctx = FlashCtx::with_config(
        CtxConfig {
            rows_per_part: 4096,
            storage: StorageClass::Em,
            trace: level,
            ..CtxConfig::default()
        },
        Some(safs.clone()),
    );

    let x = FM::runif(&ctx, rows, cols as usize, 0.0, 1.0, 42).materialize(&ctx);
    safs.flush();

    let io0 = safs.stats_snapshot();
    let sh0 = safs.shard_stats_snapshots();
    let (sum, wall) = time(|| (0..SCANS).map(|_| x.sum().value(&ctx)).sum::<f64>());
    assert!(sum.is_finite(), "scan produced a non-finite sum");
    let io = io0.delta(&safs.stats_snapshot());
    let sh1 = safs.shard_stats_snapshots();
    let per_shard: Vec<ShardStatsSnapshot> =
        sh0.iter().zip(&sh1).map(|(b, a)| b.delta(a)).collect();

    let secs = wall.as_secs_f64();
    let cell = Cell {
        backend,
        shards,
        secs,
        read_gbps: io.read_bytes as f64 / secs / 1e9,
        read_bytes: io.read_bytes,
        per_shard,
    };
    println!(
        "  {:6} x{}  {:>7.3}s  {:>7.2} GB/s read   {}",
        backend.as_str(),
        shards,
        secs,
        cell.read_gbps,
        io_summary_line(&io)
    );
    for (i, s) in cell.per_shard.iter().enumerate() {
        println!(
            "         shard {i}: {} reads / {} MiB, qd max {}, retries {}",
            s.read_reqs,
            s.read_bytes >> 20,
            s.max_queue_depth,
            s.retries
        );
    }
    (cell, ctx)
}

fn sweep_section(cells: &[Cell]) -> String {
    let mut out = String::from("[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let join = |f: &dyn Fn(&ShardStatsSnapshot) -> u64| {
            c.per_shard.iter().map(|s| f(s).to_string()).collect::<Vec<_>>().join(",")
        };
        out.push_str(&format!(
            "{{\"backend\":\"{}\",\"shards\":{},\"seconds\":{:.6},\"read_gbps\":{:.4},\
             \"read_bytes\":{},\"per_shard_read_reqs\":[{}],\"per_shard_read_bytes\":[{}],\
             \"per_shard_max_queue_depth\":[{}],\"per_shard_retries\":[{}]}}",
            c.backend.as_str(),
            c.shards,
            c.secs,
            c.read_gbps,
            c.read_bytes,
            join(&|s| s.read_reqs),
            join(&|s| s.read_bytes),
            join(&|s| s.max_queue_depth),
            join(&|s| s.retries),
        ));
    }
    out.push(']');
    out
}

fn main() {
    // The shard count IS the sweep axis: the CI-wide `FLASHR_SAFS_SHARDS`
    // override must not rewrite the striped layouts under us.
    std::env::remove_var("FLASHR_SAFS_SHARDS");
    // Park the metrics address: the listener must land on the *last*
    // context (the 4-shard sim cell we scrape), not the first. Same for
    // the trace path — the first traced context to *drop* claims it, and
    // that would be a throwaway direct cell, not the merged sim export.
    // Trace level is resolved before parking so the request still raises
    // the cells to timeline spans.
    let level = bench_trace_level();
    let metrics_addr = std::env::var("FLASHR_METRICS_ADDR").ok();
    std::env::remove_var("FLASHR_METRICS_ADDR");
    let trace_out = std::env::var("FLASHR_TRACE_OUT").ok();
    std::env::remove_var("FLASHR_TRACE_OUT");

    let scale = Scale::from_env();
    let rows = scale.rows(163_840, 2_621_440);
    let cols = 16u64;
    let scan_bytes = rows * cols * 8 * SCANS;
    println!(
        "shard sweep: {rows} x {cols} f64 ({} MiB), {SCANS} scans/cell, shards {SHARD_COUNTS:?}",
        (rows * cols * 8) >> 20
    );

    let mut report = Report::new();
    let mut cells: Vec<Cell> = Vec::new();
    let mut stages: Vec<BenchStage> = Vec::new();
    // Sim (throttled) cells run last so the final context — the one that
    // re-claims the metrics address below — is the 4-shard sim cell.
    let mut kept: Vec<(String, FlashCtx)> = Vec::new();
    for backend in [BackendKind::Direct, BackendKind::Sim] {
        for shards in SHARD_COUNTS {
            if backend == BackendKind::Sim && shards == *SHARD_COUNTS.last().unwrap() {
                if let Some(addr) = &metrics_addr {
                    std::env::set_var("FLASHR_METRICS_ADDR", addr);
                }
            }
            let (cell, ctx) = run_cell(backend, shards, rows, cols, level);
            let label = format!("{}-x{}", backend.as_str(), shards);
            stages.push(BenchStage::new(
                &format!("scan-{label}"),
                std::time::Duration::from_secs_f64(cell.secs),
                scan_bytes as f64 / cell.secs / (1u64 << 30) as f64,
            ));
            report.push_extra(
                "shard-sweep",
                &format!("em-scan-{}", backend.as_str()),
                &format!("shards={shards}"),
                &format!("rows={rows} cols={cols} scans={SCANS}"),
                cell.secs,
                cell.read_gbps,
            );
            cells.push(cell);
            if backend == BackendKind::Sim {
                kept.push((label, ctx));
            }
        }
    }

    // The acceptance shape: with per-device throttling, more shards must
    // mean more aggregate bandwidth. Printed here; gated in CI by
    // `scripts/check_shard_sweep` against the JSON artifact.
    let sim: Vec<&Cell> =
        cells.iter().filter(|c| c.backend == BackendKind::Sim).collect();
    for w in sim.windows(2) {
        let (a, b) = (w[0], w[1]);
        let ok = b.read_gbps > a.read_gbps;
        println!(
            "  monotonic {} -> {} shards: {:.2} -> {:.2} GB/s  [{}]",
            a.shards,
            b.shards,
            a.read_gbps,
            b.read_gbps,
            if ok { "ok" } else { "VIOLATION" }
        );
    }

    let last = &kept.last().expect("sim cells kept").1;
    print_critical_path("shard_sweep", &last.profile_report());
    let sections = [
        ("sweep", sweep_section(&cells)),
        ("host", host_section_json(last)),
    ];
    save_bench_artifact(
        "shard_sweep",
        &bench_artifact_json_sections(
            "shard_sweep",
            &stages,
            &last.profile_report(),
            &sections,
        ),
    );
    report.print_raw();
    report.save_json("shard_sweep");

    // Per-shard series (`flashr_io_shard_*`) from the 4-shard sim cell.
    scrape_own_metrics(last);
    if let Some(path) = &trace_out {
        std::env::set_var("FLASHR_TRACE_OUT", path);
    }
    let parts: Vec<(&str, &FlashCtx)> =
        kept.iter().map(|(l, c)| (l.as_str(), c)).collect();
    maybe_export_trace(&parts);
    maybe_dump_flight(last);
}
