//! Table 6: runtime and peak memory of FlashR on the billion-scale
//! datasets, out-of-core.
//!
//! The paper runs Criteo (4.3 B × 40) and PageGraph-32ev (3.5 B × 32) on
//! a 1 TB machine and reports minutes of runtime with single-digit-GB
//! memory footprints. Scaled here (quick: 1 M rows; full: 50 M rows), the
//! property under test is the paper's: *memory consumption is a tiny,
//! size-independent fraction of the dataset* because only sink matrices
//! are ever materialized in RAM.
//!
//! ```sh
//! cargo run --release -p flashr-bench --bin table6 [-- --full]
//! ```

use flashr::data::{criteo_like, pagegraph_like};
use flashr::ml::*;

use flashr_bench::*;

fn gib(b: u64) -> f64 {
    b as f64 / (1u64 << 30) as f64
}

fn main() {
    let scale = Scale::from_env();
    let n_criteo = scale.rows(1_000_000, 50_000_000);
    let n_page = scale.rows(500_000, 25_000_000);
    println!("Table 6 — out-of-core runtime and peak memory (criteo n={n_criteo}, pagegraph n={n_page})\n");

    let mut report = Report::new();
    let em = em_ctx_raw("table6");

    let d = criteo_like(&em, n_criteo, 40, 7);
    let x = d.x.materialize(&em);
    let y = d.y.materialize(&em);
    let pg = pagegraph_like(&em, n_page, 32, 10, 5).x.materialize(&em);
    let criteo_bytes = n_criteo * 40 * 8;
    let page_bytes = n_page * 32 * 8;
    println!(
        "datasets on the array: criteo {:.2} GiB, pagegraph {:.2} GiB\n",
        gib(criteo_bytes),
        gib(page_bytes)
    );
    let baseline_rss = peak_rss_bytes();

    println!("{:<22} {:>12} {:>18}", "algorithm", "runtime (s)", "peak RSS (GiB)");
    let mut run = |name: &str, f: &mut dyn FnMut()| {
        let (_, t) = time(&mut *f);
        let rss = peak_rss_bytes();
        println!("{name:<22} {:>12.2} {:>18.2}", t.as_secs_f64(), gib(rss));
        report.push_extra("table6", name, "FlashR-EM", "", t.as_secs_f64(), gib(rss));
    };

    run("correlation", &mut || {
        correlation(&em, &x);
    });
    run("pca", &mut || {
        pca(&em, &x, 10);
    });
    run("naive-bayes", &mut || {
        naive_bayes(&em, &x, &y, 2);
    });
    run("lda", &mut || {
        lda(&em, &x, &y, 2);
    });
    run("logistic-regression", &mut || {
        logistic_regression(&em, &x, &y, &LogRegOptions { max_iters: 10, ..Default::default() });
    });
    run("kmeans", &mut || {
        kmeans(&em, &pg, &KmeansOptions { k: 10, max_iters: 10, seed: 1 });
    });
    run("gmm", &mut || {
        gmm(&em, &pg, &GmmOptions { k: 4, max_iters: 4, ..Default::default() });
    });

    let final_rss = peak_rss_bytes();
    println!(
        "\npeak RSS {:.2} GiB vs dataset {:.2} GiB → footprint ratio {:.3}",
        gib(final_rss),
        gib(criteo_bytes + page_bytes),
        final_rss as f64 / (criteo_bytes + page_bytes) as f64
    );
    println!("(RSS before the algorithm loop: {:.2} GiB — includes generator buffers)", gib(baseline_rss));
    if let Some(io) = em.profile_report().io {
        println!("{}", io_summary_line(&io));
    }
    report.save_json("table6");
}
