//! Criterion micro-benchmarks for the GenOp engine: fusion benefit,
//! engine-mode comparison, and sink aggregation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flashr::prelude::*;
use std::time::Duration;

fn bench_fusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("genops-fusion");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    let n = 1_000_000u64;
    for mode in [ExecMode::Eager, ExecMode::MemFuse, ExecMode::CacheFuse] {
        let ctx = FlashCtx::in_memory().with_mode(mode);
        let x = FM::rnorm(&ctx, n, 8, 0.0, 1.0, 1).materialize(&ctx);
        g.bench_with_input(
            BenchmarkId::new("elementwise-chain-sum", format!("{mode:?}")),
            &mode,
            |b, _| {
                b.iter(|| ((&(&x + 1.0) * 2.0).abs().sqrt()).sum().value(&ctx));
            },
        );
    }
    g.finish();
}

fn bench_sinks(c: &mut Criterion) {
    let mut g = c.benchmark_group("genops-sinks");
    g.sample_size(10).measurement_time(Duration::from_secs(3));

    let ctx = FlashCtx::in_memory();
    let n = 1_000_000u64;
    let x = FM::rnorm(&ctx, n, 16, 0.0, 1.0, 2).materialize(&ctx);
    let labels = FM::seq(n, 0.0, 1.0)
        .binary_scalar(BinaryOp::Rem, 8.0, false)
        .cast(DType::I64)
        .materialize(&ctx);

    g.bench_function("colSums", |b| b.iter(|| x.col_sums().to_vec(&ctx)));
    g.bench_function("crossprod", |b| b.iter(|| x.crossprod().to_dense(&ctx)));
    g.bench_function("groupby-8", |b| {
        b.iter(|| x.groupby_row(&labels, AggOp::Sum, 8).to_dense(&ctx))
    });
    g.bench_function("three-sinks-one-pass", |b| {
        b.iter(|| {
            FM::materialize_multi(&ctx, &[&x.sum(), &x.col_sums(), &x.crossprod()]);
        })
    });
    g.finish();
}

fn bench_cum(c: &mut Criterion) {
    let mut g = c.benchmark_group("genops-cum");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let ctx = FlashCtx::in_memory();
    let x = FM::rnorm(&ctx, 1_000_000, 4, 0.0, 1.0, 3).materialize(&ctx);
    g.bench_function("cumsum-col", |b| b.iter(|| x.cumsum_col().materialize(&ctx)));
    g.finish();
}

criterion_group!(benches, bench_fusion, bench_sinks, bench_cum);
criterion_main!(benches);
