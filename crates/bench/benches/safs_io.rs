//! Criterion micro-benchmarks for the SAFS substrate: partition write and
//! read throughput, synchronous vs. asynchronous batching.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flashr::prelude::*;
use flashr::safs::IoBuf;
use std::time::Duration;

fn safs(tag: &str) -> Safs {
    let dir = std::env::temp_dir().join(format!("flashr-bench-safsio-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Safs::open(SafsConfig::striped_under(dir, 4)).unwrap()
}

fn bench_throughput(c: &mut Criterion) {
    let part_bytes = 1u64 << 20; // 1 MiB partitions
    let nparts = 32u64;
    let total = part_bytes * nparts;

    let mut g = c.benchmark_group("safs-io");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.throughput(Throughput::Bytes(total));

    let rt = safs("rw");
    let file = rt.create("bench", part_bytes, nparts).unwrap();
    let payload = vec![0xABu8; part_bytes as usize];
    for p in 0..nparts {
        file.write_part(p, &payload).unwrap();
    }

    g.bench_function("read-sync-sequential", |b| {
        b.iter(|| {
            for p in 0..nparts {
                let buf = file.read_part(p).unwrap();
                assert_eq!(buf.len(), part_bytes as usize);
            }
        })
    });

    g.bench_function("read-async-batched", |b| {
        b.iter(|| {
            let tickets: Vec<_> = (0..nparts).map(|p| file.read_part_async(p).unwrap()).collect();
            for t in tickets {
                t.wait().unwrap();
            }
        })
    });

    g.bench_function("write-async-batched", |b| {
        b.iter(|| {
            let tickets: Vec<_> = (0..nparts)
                .map(|p| file.write_part_async(p, IoBuf::from_bytes(&payload)).unwrap())
                .collect();
            for t in tickets {
                t.wait().unwrap();
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
