//! Criterion micro-benchmarks for sparse × dense multiplication:
//! in-memory vs. semi-external memory.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flashr::prelude::*;
use flashr::sparse::{spmm, CsrMatrix, SemCsr};
use std::time::Duration;

fn bench_spmm(c: &mut Criterion) {
    let n = 50_000usize;
    let deg = 16usize;
    let k = 8usize;

    let a = CsrMatrix::random(n, n, deg, 42);
    let b = Dense::from_fn(n, k, |r, cc| ((r * 7 + cc) % 13) as f64 - 6.0);

    let mut g = c.benchmark_group("spmm");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    g.throughput(Throughput::Elements(a.nnz() as u64 * k as u64));

    g.bench_function("in-memory", |bch| bch.iter(|| spmm(&a, &b)));

    let dir = std::env::temp_dir().join(format!("flashr-bench-spmm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = Safs::open(SafsConfig::striped_under(dir, 4)).unwrap();
    let sem = SemCsr::store(&safs, "bench", &a, 4096);

    g.bench_function("semi-external", |bch| bch.iter(|| sem.spmm(&b)));
    g.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
