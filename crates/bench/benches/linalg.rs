//! Criterion micro-benchmarks for the dense kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flashr::linalg::{cholesky, eigen_sym, matmul, syrk, Dense};
use std::time::Duration;

fn pseudo(r: usize, c: usize, seed: u64) -> Dense {
    let mut s = seed;
    Dense::from_fn(r, c, |_, _| {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn spd(n: usize, seed: u64) -> Dense {
    let b = pseudo(n + 4, n, seed);
    let mut g = syrk(&b);
    for i in 0..n {
        let v = g.at(i, i);
        g.set(i, i, v + 1.0);
    }
    g
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg-gemm");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [64usize, 256] {
        let a = pseudo(n, n, 1);
        let b = pseudo(n, n, 2);
        g.bench_with_input(BenchmarkId::new("square", n), &n, |bch, _| {
            bch.iter(|| matmul(&a, &b));
        });
    }
    // The engine's shape: tall × small.
    let tall = pseudo(100_000, 32, 3);
    let small = pseudo(32, 8, 4);
    g.bench_function("tall-100kx32-by-32x8", |b| b.iter(|| matmul(&tall, &small)));
    g.finish();
}

fn bench_syrk(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg-syrk");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let tall = pseudo(100_000, 32, 5);
    g.bench_function("crossprod-100kx32", |b| b.iter(|| syrk(&tall)));
    g.finish();
}

fn bench_factorizations(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg-factor");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [32usize, 128] {
        let a = spd(n, n as u64);
        g.bench_with_input(BenchmarkId::new("cholesky", n), &n, |bch, _| {
            bch.iter(|| cholesky(&a).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("eigen-jacobi", n), &n, |bch, _| {
            bch.iter(|| eigen_sym(&a));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_syrk, bench_factorizations);
criterion_main!(benches);
