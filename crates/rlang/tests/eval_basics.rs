//! Interpreter semantics: scalars, vectors, control flow, closures, and
//! matrix laziness.

use flashr_core::session::{CtxConfig, FlashCtx};
use flashr_rlang::{Interp, Value};

fn interp() -> Interp {
    Interp::new(FlashCtx::with_config(
        CtxConfig { rows_per_part: 256, ..Default::default() },
        None,
    ))
}

fn num(r: &mut Interp, src: &str) -> f64 {
    match r.eval_str(src).unwrap() {
        Value::Num(v) => v,
        Value::Bool(b) => f64::from(b),
        Value::Vec(v) if v.len() == 1 => v[0],
        Value::Matrix(m) => {
            let f = r.force_fm(&m);
            assert_eq!(f.len(), 1, "expected scalar result");
            f.get(r.ctx(), 0, 0)
        }
        other => panic!("expected a number, got {other:?}"),
    }
}

#[test]
fn arithmetic_and_precedence() {
    let mut r = interp();
    assert_eq!(num(&mut r, "1 + 2 * 3"), 7.0);
    assert_eq!(num(&mut r, "(1 + 2) * 3"), 9.0);
    assert_eq!(num(&mut r, "2^10"), 1024.0);
    assert_eq!(num(&mut r, "-2^2"), -4.0);
    assert_eq!(num(&mut r, "7 %% 3"), 1.0);
    assert_eq!(num(&mut r, "-7 %% 3"), 2.0); // R's sign convention
    assert_eq!(num(&mut r, "10 / 4"), 2.5);
}

#[test]
fn variables_and_blocks() {
    let mut r = interp();
    assert_eq!(num(&mut r, "x <- 3; y <- x * 2; x + y"), 9.0);
    assert_eq!(num(&mut r, "{ a <- 1; a <- a + 1; a }"), 2.0);
}

#[test]
fn vectors_and_recycling() {
    let mut r = interp();
    assert_eq!(num(&mut r, "sum(1:10)"), 55.0);
    assert_eq!(num(&mut r, "sum(c(1, 2, 3) * 2)"), 12.0);
    assert_eq!(num(&mut r, "sum(c(1, 2, 3, 4) * c(10, 100))"), 10.0 + 200.0 + 30.0 + 400.0);
    assert_eq!(num(&mut r, "length(5:1)"), 5.0);
    assert_eq!(num(&mut r, "c(5, 4, 9)[2]"), 4.0);
    assert_eq!(num(&mut r, "which.min(c(3, 1, 2))"), 2.0);
}

#[test]
fn control_flow() {
    let mut r = interp();
    assert_eq!(num(&mut r, "if (3 > 2) 10 else 20"), 10.0);
    assert_eq!(num(&mut r, "if (FALSE) 10 else 20"), 20.0);
    assert_eq!(
        num(&mut r, "s <- 0\nfor (i in 1:100) s <- s + i\ns"),
        5050.0
    );
    assert_eq!(
        num(&mut r, "n <- 0\nwhile (n < 10) n <- n + 3\nn"),
        12.0
    );
    assert_eq!(
        num(&mut r, "s <- 0\nfor (i in 1:10) { if (i == 4) break; s <- s + i }\ns"),
        6.0
    );
}

#[test]
fn closures_capture_and_default_args() {
    let mut r = interp();
    let src = r#"
make.adder <- function(k) function(x) x + k
add5 <- make.adder(5)
add5(10)
"#;
    assert_eq!(num(&mut r, src), 15.0);
    assert_eq!(num(&mut r, "f <- function(x, y = 3) x * y\nf(4)"), 12.0);
    assert_eq!(num(&mut r, "f(4, y = 5)"), 20.0);
}

#[test]
fn recursion_works() {
    let mut r = interp();
    let src = r#"
fact <- function(n) if (n <= 1) 1 else n * fact(n - 1)
fact(10)
"#;
    assert_eq!(num(&mut r, src), 3628800.0);
}

#[test]
fn matrices_are_lazy_until_extracted() {
    let mut r = interp();
    r.eval_str("X <- rnorm.matrix(10000, 4, seed = 1)").unwrap();
    let passes_before = r.ctx().stats().snapshot().passes;
    r.eval_str("Y <- sqrt(abs(X)) * 2").unwrap();
    assert_eq!(r.ctx().stats().snapshot().passes, passes_before, "building a DAG must not execute");
    let v = num(&mut r, "as.vector(sum(Y)) / length(Y)");
    assert!(v > 1.0 && v < 2.0, "E[2·sqrt(|z|)] ≈ 1.59, got {v}");
    assert_eq!(r.ctx().stats().snapshot().passes, passes_before + 1, "one fused pass");
}

#[test]
fn matrix_scalar_mixing_and_comparison() {
    let mut r = interp();
    r.eval_str("X <- runif.matrix(5000, 2, seed = 9)").unwrap();
    let frac = num(&mut r, "as.vector(sum(X > 0.5)) / length(X)");
    assert!((frac - 0.5).abs() < 0.05, "frac={frac}");
    // 1/(1+exp(-X)) — the paper's sigmoid composition.
    let m = num(&mut r, "as.vector(mean(1/(1+exp(-X))))");
    assert!((m - 0.622).abs() < 0.01, "mean sigmoid of U(0,1) ≈ 0.622, got {m}");
}

#[test]
fn matmul_shapes() {
    let mut r = interp();
    r.eval_str("X <- rnorm.matrix(2000, 3, seed = 2)").unwrap();
    // Tall × small.
    r.eval_str("w <- matrix(c(1, 2, 3), nrow = 1)").unwrap();
    let v = num(&mut r, "nrow(X %*% t(w))");
    assert_eq!(v, 2000.0);
    // Gramian: t(X) %*% X is 3×3.
    assert_eq!(num(&mut r, "nrow(t(X) %*% X)"), 3.0);
    assert_eq!(num(&mut r, "ncol(t(X) %*% X)"), 3.0);
    // Small × small.
    assert_eq!(num(&mut r, "as.vector(w %*% t(w))"), 14.0);
}

#[test]
fn aggregates_and_dims() {
    let mut r = interp();
    r.eval_str("X <- matrix(1:6, nrow = 2)").unwrap(); // cols (1,2),(3,4),(5,6)
    assert_eq!(num(&mut r, "sum(X)"), 21.0);
    assert_eq!(num(&mut r, "nrow(X)"), 2.0);
    assert_eq!(num(&mut r, "ncol(X)"), 3.0);
    assert_eq!(num(&mut r, "X[2, 3]"), 6.0);
    assert_eq!(num(&mut r, "sum(rowSums(X))"), 21.0);
    assert_eq!(num(&mut r, "sum(colMeans(X))"), 1.5 + 3.5 + 5.5);
}

#[test]
fn index_assignment() {
    let mut r = interp();
    assert_eq!(num(&mut r, "v <- c(1, 2, 3)\nv[2] <- 10\nsum(v)"), 14.0);
    assert_eq!(num(&mut r, "M <- matrix(0, nrow = 2, ncol = 2)\nM[1, 2] <- 7\nsum(M)"), 7.0);
}

#[test]
fn errors_are_reported() {
    let mut r = interp();
    assert!(r.eval_str("undefined.variable").is_err());
    assert!(r.eval_str("1 +").is_err());
    assert!(r.eval_str("f <- function(x) x\nf(1, 2)").is_err());
    assert!(r.eval_str("stopifnot(1 > 2)").is_err());
    assert!(r.eval_str("stopifnot(2 > 1)").is_ok());
}

#[test]
fn strings_and_null() {
    let mut r = interp();
    assert!(matches!(r.eval_str("\"hi\"").unwrap(), Value::Str(s) if s == "hi"));
    assert_eq!(num(&mut r, "is.null(NULL)"), 1.0);
    assert_eq!(num(&mut r, "is.null(3)"), 0.0);
    assert_eq!(num(&mut r, "\"a\" == \"a\""), 1.0);
    assert_eq!(num(&mut r, "\"a\" != \"b\""), 1.0);
}
