//! Property tests: random programs round-trip through the lexer, parser
//! and evaluator and match a direct Rust evaluation — including when the
//! same computation is pushed through the FlashR engine as a matrix.

use flashr_core::session::{CtxConfig, FlashCtx};
use flashr_rlang::{Interp, Value};
use proptest::prelude::*;

/// A tiny arithmetic AST we can both print as R and evaluate directly.
#[derive(Debug, Clone)]
enum E {
    Lit(f64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Lit(v) => {
                if *v < 0.0 {
                    format!("({v})")
                } else {
                    format!("{v}")
                }
            }
            E::Add(a, b) => format!("({} + {})", a.render(), b.render()),
            E::Sub(a, b) => format!("({} - {})", a.render(), b.render()),
            E::Mul(a, b) => format!("({} * {})", a.render(), b.render()),
            E::Div(a, b) => format!("({} / {})", a.render(), b.render()),
            E::Neg(a) => format!("(-{})", a.render()),
        }
    }

    fn eval(&self) -> f64 {
        match self {
            E::Lit(v) => *v,
            E::Add(a, b) => a.eval() + b.eval(),
            E::Sub(a, b) => a.eval() - b.eval(),
            E::Mul(a, b) => a.eval() * b.eval(),
            E::Div(a, b) => a.eval() / b.eval(),
            E::Neg(a) => -a.eval(),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = (-50.0f64..50.0).prop_map(E::Lit);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            inner.prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

fn interp() -> Interp {
    Interp::new(FlashCtx::with_config(CtxConfig { rows_per_part: 64, ..Default::default() }, None))
}

fn close(a: f64, b: f64) -> bool {
    if !a.is_finite() || !b.is_finite() {
        return a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan());
    }
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn scalar_expressions_match_reference(e in arb_expr()) {
        let mut r = interp();
        let got = r.eval_str(&e.render()).unwrap();
        let want = e.eval();
        match got {
            Value::Num(v) => prop_assert!(close(v, want), "{} => {v} vs {want}", e.render()),
            other => prop_assert!(false, "non-numeric result {other:?}"),
        }
    }

    #[test]
    fn expressions_match_through_the_engine(e in arb_expr(), n in 1u64..300) {
        // Evaluate `expr + 0·X` as a matrix expression: every element of
        // the result must equal the scalar value.
        let mut r = interp();
        let src = format!(
            "X <- runif.matrix({n}, 2, seed = 7)\nas.vector(max(({expr}) + X * 0)) - as.vector(min(({expr}) + X * 0))",
            expr = e.render()
        );
        let want = e.eval();
        if !want.is_finite() {
            return Ok(()); // NaN/Inf propagate; covered by the scalar test
        }
        let spread = r.eval_str(&src).unwrap();
        match spread {
            Value::Num(v) => prop_assert!(v.abs() < 1e-9, "constant matrix has spread {v}"),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
        let through = r
            .eval_str(&format!(
                "as.vector(sum(({expr}) + X * 0)) / (2 * {n})",
                expr = e.render()
            ))
            .unwrap();
        match through {
            Value::Num(v) => prop_assert!(close(v, want), "engine mean {v} vs {want}"),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn vector_sums_match(vals in proptest::collection::vec(-100.0f64..100.0, 1..20)) {
        let mut r = interp();
        let src = format!(
            "sum(c({}))",
            vals.iter().map(|v| format!("({v})")).collect::<Vec<_>>().join(", ")
        );
        let got = r.eval_str(&src).unwrap();
        let want: f64 = vals.iter().sum();
        match got {
            Value::Num(v) => prop_assert!(close(v, want)),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn parser_never_panics_on_random_text(s in "[ -~\n]{0,80}") {
        // Arbitrary printable text must produce Ok or Err, never a panic.
        let _ = flashr_rlang::parse_program(&s);
    }

    #[test]
    fn ranges_match_reference(a in -20i64..20, b in -20i64..20) {
        let mut r = interp();
        let got = r.eval_str(&format!("sum(({a}):({b}))")).unwrap();
        let want: f64 = if a <= b { (a..=b).sum::<i64>() as f64 } else { (b..=a).sum::<i64>() as f64 };
        match got {
            Value::Num(v) => prop_assert!(close(v, want), "{a}:{b} sum {v} vs {want}"),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}
