//! The paper's R listings, executed on the FlashR engine.
//!
//! Figure 2 (logistic regression with gradient descent + line search) and
//! Figure 3 (k-means) run as printed, up to two documented repairs of the
//! listings' own typos:
//!
//! * Fig. 2 computes `l2` once *before* the line-search loop and tests
//!   `l2 < bound`, which as printed either no-ops or loops forever; we
//!   recompute `l2` inside the loop and test `>` (textbook Armijo).
//! * Fig. 3's line 4 reads `num.moves > nrow(X)` where an assignment is
//!   clearly meant, and its `sweep(..., 2, CNT, "/")` divides the k×p
//!   center sums by the k-vector of counts, which is margin 1.

use flashr_core::session::{CtxConfig, FlashCtx};
use flashr_rlang::{Interp, Value};

fn interp() -> Interp {
    Interp::new(FlashCtx::with_config(
        CtxConfig { rows_per_part: 1024, ..Default::default() },
        None,
    ))
}

#[test]
fn figure2_logistic_regression_runs_and_learns() {
    let mut r = interp();

    // Synthetic classification data with a known direction.
    r.eval_str(
        r#"
num.features <- 4
max.iters <- 12
X <- rnorm.matrix(20000, num.features, seed = 1)
truth <- matrix(c(1.5, -1, 0.5, 2), nrow = 1)
y <- sigmoid(X %*% t(truth)) > runif.matrix(20000, 1, seed = 2)
"#,
    )
    .unwrap();

    // The paper's Figure 2, with the line-search repair (see module docs).
    let program = r#"
logistic.regression <- function(X, y) {
  grad <- function(X, y, w)
    (t(X) %*% (1/(1+exp(-X%*%t(w)))-y))/length(y)
  cost <- function(X, y, w)
    sum(y*(-X%*%t(w))+log(1+exp(X%*%t(w))))/length(y)
  theta <- matrix(rep(0, num.features), nrow=1)
  for (i in 1:max.iters) {
    g <- grad(X, y, theta)
    l <- cost(X, y, theta)
    eta <- 1
    delta <- 0.5 * (-g) %*% t(g)
    while (as.vector(cost(X, y, theta+eta*(-g))) > as.vector(l)+as.vector(delta)[1]*eta)
      eta <- eta * 0.2
    theta <- theta + (-g) * eta
  }
  theta
}
theta <- logistic.regression(X, y)
"#;
    r.eval_str(program).unwrap();

    // The learned weights point the right way.
    let check = r
        .eval_str(
            r#"
final.cost <- as.vector(sum(y*(-X%*%t(theta))+log(1+exp(X%*%t(theta))))/length(y))
chance.cost <- log(2)
c(final.cost, chance.cost, theta[1, 1] > 0, theta[1, 2] < 0, theta[1, 4] > theta[1, 3])
"#,
        )
        .unwrap();
    let v = match check {
        Value::Vec(v) => v,
        other => panic!("{other:?}"),
    };
    assert!(v[0] < 0.45, "final logloss {} not below chance {}", v[0], v[1]);
    assert_eq!(&v[2..], &[1.0, 1.0, 1.0], "weight signs wrong: {v:?}");
}

#[test]
fn figure3_kmeans_runs_and_converges() {
    let mut r = interp();

    // Two obvious 1-D blobs at 0 and 10, initial centers 1 and 9.
    r.eval_str(
        r#"
n <- 10000
X <- rnorm.matrix(n, 1, sd = 0.5, seed = 3) + (runif.matrix(n, 1, seed = 4) > 0.5) * 10
C0 <- matrix(c(1, 9), nrow = 2)
"#,
    )
    .unwrap();

    // The paper's Figure 3 with the two listed repairs.
    let program = r#"
kmeans <- function(X, C) {
  I <- NULL
  num.moves <- nrow(X)
  while (num.moves > 0) {
    D <- inner.prod(X, t(C), "euclidean", "+")
    old.I <- I
    I <- agg.row(D, "which.min")
    I <- set.cache(I, TRUE)
    CNT <- groupby.row(rep.int(1, nrow(I)), I, "+")
    C <- sweep(groupby.row(X, I, "+"), 1, CNT, "/")
    if (!is.null(old.I))
      num.moves <- as.vector(sum(old.I != I))
  }
  C
}
C <- kmeans(X, C0)
"#;
    r.eval_str(program).unwrap();

    let centers = match r.eval_str("c(min(C), max(C))").unwrap() {
        Value::Vec(v) => v,
        other => panic!("{other:?}"),
    };
    assert!(centers[0].abs() < 0.1, "low center {}", centers[0]);
    assert!((centers[1] - 10.0).abs() < 0.1, "high center {}", centers[1]);

    // Balanced assignment: blob membership was a fair coin.
    let frac = r
        .eval_str("as.vector(sum(agg.row(inner.prod(X, t(C), \"euclidean\", \"+\"), \"which.min\") == 1)) / nrow(X)")
        .unwrap();
    let frac = match frac {
        Value::Num(v) => v,
        other => panic!("{other:?}"),
    };
    assert!((frac - 0.5).abs() < 0.05, "assignment fraction {frac}");
}

#[test]
fn figure3_kmeans_multidimensional() {
    let mut r = interp();
    r.eval_str(
        r#"
n <- 6000
shift <- (runif.matrix(n, 1, seed = 7) > 0.5) * 6
X <- cbind(rnorm.matrix(n, 1, sd = 0.4, seed = 5) + shift,
           rnorm.matrix(n, 1, sd = 0.4, seed = 6) + shift)
C0 <- matrix(c(1, 5, 1, 5), nrow = 2)
kmeans <- function(X, C) {
  I <- NULL
  num.moves <- nrow(X)
  while (num.moves > 0) {
    D <- inner.prod(X, t(C), "euclidean", "+")
    old.I <- I
    I <- agg.row(D, "which.min")
    I <- set.cache(I, TRUE)
    CNT <- groupby.row(rep.int(1, nrow(I)), I, "+")
    C <- sweep(groupby.row(X, I, "+"), 1, CNT, "/")
    if (!is.null(old.I))
      num.moves <- as.vector(sum(old.I != I))
  }
  C
}
C <- kmeans(X, C0)
stopifnot(abs(min(C)) < 0.2, abs(max(C) - 6) < 0.2)
"#,
    )
    .unwrap();
}

#[test]
fn r_pca_script_matches_native_pca() {
    // PCA the way the paper describes it (§4.1): eigen on the Gramian —
    // here just the Gramian/covariance assembly in R, checked against
    // the native implementation.
    let ctx = FlashCtx::with_config(CtxConfig { rows_per_part: 1024, ..Default::default() }, None);
    let mut r = Interp::new(ctx.clone());
    r.eval_str(
        r#"
n <- 30000
X <- rnorm.matrix(n, 3, seed = 11) * 2 + 1
mu <- colSums(X) / n
G <- t(X) %*% X
COV <- (G - n * (t(mu) %*% mu)) / (n - 1)
total.var <- sum(diag(COV))
"#,
    )
    .unwrap();
    let total = match r.eval_str("total.var").unwrap() {
        Value::Num(v) => v,
        Value::Vec(v) => v[0],
        other => panic!("{other:?}"),
    };
    // Three columns of variance 4 each.
    assert!((total - 12.0).abs() < 0.3, "total variance {total}");
}

#[test]
fn iteration_stays_one_pass_per_round() {
    // The Figure 3 loop body must stay a bounded number of engine passes
    // per iteration (fusion working through the interpreter).
    let mut r = interp();
    r.eval_str("X <- materialize(rnorm.matrix(20000, 2, seed = 21))").unwrap();
    r.eval_str("C <- matrix(c(0, 1, 0, 1), nrow = 2)").unwrap();
    let before = r.ctx().stats().snapshot().passes;
    r.eval_str(
        r#"
D <- inner.prod(X, t(C), "euclidean", "+")
I <- agg.row(D, "which.min")
S <- groupby.row(X, I, "+")
"#,
    )
    .unwrap();
    let used = r.ctx().stats().snapshot().passes - before;
    // groupby.row materializes labels + label-range + groupby: ≤ 4 passes
    // for the whole body (vs. one per *operation* without fusion).
    assert!(used <= 4, "interpreted loop body used {used} passes");
}

#[test]
fn figure3_kmeans_runs_out_of_core() {
    // The same R program, out-of-core: identical centers as in memory.
    let dir = std::env::temp_dir().join(format!("rlang-em-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let safs = flashr_safs::Safs::open(flashr_safs::SafsConfig::striped_under(&dir, 2)).unwrap();
    let em = FlashCtx::with_config(
        CtxConfig {
            rows_per_part: 1024,
            storage: flashr_core::session::StorageClass::Em,
            ..Default::default()
        },
        Some(safs),
    );
    let program = r#"
n <- 4000
X <- materialize(rnorm.matrix(n, 1, sd = 0.5, seed = 3) + (runif.matrix(n, 1, seed = 4) > 0.5) * 10)
C0 <- matrix(c(1, 9), nrow = 2)
kmeans <- function(X, C) {
  I <- NULL
  num.moves <- nrow(X)
  while (num.moves > 0) {
    D <- inner.prod(X, t(C), "euclidean", "+")
    old.I <- I
    I <- agg.row(D, "which.min")
    I <- set.cache(I, TRUE)
    CNT <- groupby.row(rep.int(1, nrow(I)), I, "+")
    C <- sweep(groupby.row(X, I, "+"), 1, CNT, "/")
    if (!is.null(old.I))
      num.moves <- as.vector(sum(old.I != I))
  }
  C
}
C <- kmeans(X, C0)
c(min(C), max(C))
"#;
    let run = |ctx: FlashCtx| -> Vec<f64> {
        let mut r = Interp::new(ctx);
        match r.eval_str(program).unwrap() {
            Value::Vec(v) => v.as_ref().clone(),
            other => panic!("{other:?}"),
        }
    };
    let em_centers = run(em);
    let im_centers = run(FlashCtx::with_config(
        CtxConfig { rows_per_part: 1024, ..Default::default() },
        None,
    ));
    assert!((em_centers[0] - im_centers[0]).abs() < 1e-9);
    assert!((em_centers[1] - im_centers[1]).abs() < 1e-9);
}

#[test]
fn groupby_col_and_agg_col_work_from_r() {
    let mut r = interp();
    r.eval_str(
        r#"
X <- cbind(rep(1, 500), rep(2, 500), rep(3, 500), rep(4, 500))
G <- groupby.col(X, c(1, 2, 1, 2), "+")
stopifnot(ncol(G) == 2)
stopifnot(as.vector(sum(G[, 1])) == 500 * 4)   # cols 1+3
stopifnot(as.vector(sum(G[, 2])) == 500 * 6)   # cols 2+4
CS <- agg.col(X, "+")
stopifnot(as.vector(sum(CS)) == 500 * 10)
"#,
    )
    .unwrap();
}
