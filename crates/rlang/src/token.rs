//! Lexer for the R subset.
//!
//! R terminates statements at newlines *unless* the expression is
//! syntactically incomplete; we reproduce the practical rule: newlines
//! are suppressed inside parentheses/brackets and after tokens that
//! cannot end an expression (operators, commas, `{`).

use crate::value::RError;

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Num(f64),
    Str(String),
    Ident(String),
    // keywords
    Function,
    If,
    Else,
    For,
    While,
    In,
    Break,
    Next,
    Return,
    True,
    False,
    Null,
    // punctuation / operators
    Assign,    // <-  (and `=` in statement position)
    Eq,        // =
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Colon,
    MatMul,    // %*%
    Modulo,    // %%
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    Not,
    And,
    Or,
    And2,
    Or2,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Newline,
    Eof,
}

impl Tok {
    /// Tokens after which a newline cannot terminate a statement.
    fn suppresses_newline(&self) -> bool {
        matches!(
            self,
            Tok::Assign
                | Tok::Eq
                | Tok::Plus
                | Tok::Minus
                | Tok::Star
                | Tok::Slash
                | Tok::Caret
                | Tok::Colon
                | Tok::MatMul
                | Tok::Modulo
                | Tok::Lt
                | Tok::Gt
                | Tok::Le
                | Tok::Ge
                | Tok::EqEq
                | Tok::NotEq
                | Tok::Not
                | Tok::And
                | Tok::Or
                | Tok::And2
                | Tok::Or2
                | Tok::Comma
                | Tok::LBrace
                | Tok::LParen
                | Tok::LBracket
                | Tok::Semi
                | Tok::Else
                | Tok::In
                | Tok::Function
        )
    }
}

/// Tokenize `src`.
pub fn lex(src: &str) -> Result<Vec<Tok>, RError> {
    let mut out: Vec<Tok> = Vec::new();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut depth = 0usize; // () and [] nesting
    let n = b.len();

    let err = |msg: String| Err(RError::Syntax(msg));

    while i < n {
        let c = b[i];
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
            }
            '\n' => {
                i += 1;
                if depth == 0 {
                    let suppress = out.last().map(|t| t.suppresses_newline()).unwrap_or(true)
                        || matches!(out.last(), Some(Tok::Newline) | None);
                    if !suppress {
                        out.push(Tok::Newline);
                    }
                }
            }
            ';' => {
                out.push(Tok::Semi);
                i += 1;
            }
            '(' => {
                depth += 1;
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                depth = depth.saturating_sub(1);
                out.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                depth += 1;
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                depth = depth.saturating_sub(1);
                out.push(Tok::RBracket);
                i += 1;
            }
            '{' => {
                out.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                out.push(Tok::RBrace);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '^' => {
                out.push(Tok::Caret);
                i += 1;
            }
            ':' => {
                out.push(Tok::Colon);
                i += 1;
            }
            '%' => {
                if i + 2 < n && b[i + 1] == '*' && b[i + 2] == '%' {
                    out.push(Tok::MatMul);
                    i += 3;
                } else if i + 1 < n && b[i + 1] == '%' {
                    out.push(Tok::Modulo);
                    i += 2;
                } else {
                    return err(format!("unknown %-operator at char {i}"));
                }
            }
            '<' => {
                if i + 1 < n && b[i + 1] == '-' {
                    out.push(Tok::Assign);
                    i += 2;
                } else if i + 1 < n && b[i + 1] == '=' {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && b[i + 1] == '=' {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && b[i + 1] == '=' {
                    out.push(Tok::EqEq);
                    i += 2;
                } else {
                    out.push(Tok::Eq);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < n && b[i + 1] == '=' {
                    out.push(Tok::NotEq);
                    i += 2;
                } else {
                    out.push(Tok::Not);
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < n && b[i + 1] == '&' {
                    out.push(Tok::And2);
                    i += 2;
                } else {
                    out.push(Tok::And);
                    i += 1;
                }
            }
            '|' => {
                if i + 1 < n && b[i + 1] == '|' {
                    out.push(Tok::Or2);
                    i += 2;
                } else {
                    out.push(Tok::Or);
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                while i < n && b[i] != quote {
                    if b[i] == '\\' && i + 1 < n {
                        i += 1;
                        s.push(match b[i] {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        });
                    } else {
                        s.push(b[i]);
                    }
                    i += 1;
                }
                if i >= n {
                    return err("unterminated string".into());
                }
                i += 1;
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '.' && i + 1 < n && b[i + 1].is_ascii_digit()) =>
            {
                let start = i;
                while i < n
                    && (b[i].is_ascii_digit()
                        || b[i] == '.'
                        || b[i] == 'e'
                        || b[i] == 'E'
                        || ((b[i] == '+' || b[i] == '-')
                            && i > start
                            && (b[i - 1] == 'e' || b[i - 1] == 'E')))
                {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                // R integer literals like 1L.
                let text = text.trim_end_matches('L').to_string();
                match text.parse::<f64>() {
                    Ok(v) => out.push(Tok::Num(v)),
                    Err(_) => return err(format!("bad number '{text}'")),
                }
                if i < n && b[i] == 'L' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '.' || c == '_' => {
                let start = i;
                while i < n
                    && (b[i].is_ascii_alphanumeric() || b[i] == '.' || b[i] == '_')
                {
                    i += 1;
                }
                let word: String = b[start..i].iter().collect();
                out.push(match word.as_str() {
                    "function" => Tok::Function,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "for" => Tok::For,
                    "while" => Tok::While,
                    "in" => Tok::In,
                    "break" => Tok::Break,
                    "next" => Tok::Next,
                    "return" => Tok::Return,
                    "TRUE" | "T" => Tok::True,
                    "FALSE" | "F" => Tok::False,
                    "NULL" => Tok::Null,
                    _ => Tok::Ident(word),
                });
            }
            other => return err(format!("unexpected character '{other}'")),
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = lex("x <- 1 + 2.5e1").unwrap();
        assert_eq!(
            t,
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Num(1.0),
                Tok::Plus,
                Tok::Num(25.0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn percent_operators() {
        let t = lex("A %*% B %% C").unwrap();
        assert!(t.contains(&Tok::MatMul));
        assert!(t.contains(&Tok::Modulo));
    }

    #[test]
    fn dotted_identifiers_and_keywords() {
        let t = lex("logistic.regression <- function(X) NULL").unwrap();
        assert_eq!(t[0], Tok::Ident("logistic.regression".into()));
        assert_eq!(t[2], Tok::Function);
        assert!(t.contains(&Tok::Null));
    }

    #[test]
    fn comments_are_skipped() {
        let t = lex("x <- 1 # a comment\ny <- 2").unwrap();
        assert!(t.iter().all(|tok| !matches!(tok, Tok::Str(_))));
        assert!(t.contains(&Tok::Newline));
    }

    #[test]
    fn newline_suppression_inside_parens_and_after_ops() {
        let t = lex("f(1,\n   2)").unwrap();
        assert!(!t.contains(&Tok::Newline), "newline inside call must vanish: {t:?}");
        let t = lex("x <- 1 +\n 2").unwrap();
        assert!(!t.contains(&Tok::Newline), "newline after + must vanish");
        let t = lex("x <- 1\ny <- 2").unwrap();
        assert_eq!(t.iter().filter(|x| **x == Tok::Newline).count(), 1);
    }

    #[test]
    fn strings_with_escapes() {
        let t = lex(r#"s <- "a\nb""#).unwrap();
        assert_eq!(t[2], Tok::Str("a\nb".into()));
    }

    #[test]
    fn integer_literal_suffix() {
        let t = lex("rep(0L, 5L)").unwrap();
        assert!(t.contains(&Tok::Num(0.0)));
        assert!(t.contains(&Tok::Num(5.0)));
    }

    #[test]
    fn comparison_cluster() {
        let t = lex("a <= b >= c != d == e < f > g").unwrap();
        for needle in [Tok::Le, Tok::Ge, Tok::NotEq, Tok::EqEq, Tok::Lt, Tok::Gt] {
            assert!(t.contains(&needle));
        }
    }
}
