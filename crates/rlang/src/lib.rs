//! # flashr-rlang
//!
//! An interpreter for the subset of R that FlashR programs use, executing
//! matrix code on the FlashR engine. The whole point of the paper is that
//! *existing R code* runs in parallel and out-of-core with little or no
//! modification — this crate closes that loop for the reproduction: the
//! paper's Figure 2 (logistic regression) and Figure 3 (k-means) programs
//! run verbatim, with every overridden `base` function dispatching to the
//! lazy [`FM`](flashr_core::fm::FM) API.
//!
//! ```
//! use flashr_core::session::FlashCtx;
//! use flashr_rlang::Interp;
//!
//! let mut r = Interp::new(FlashCtx::in_memory());
//! let out = r.eval_str(r#"
//!     X <- rnorm.matrix(10000, 4)
//!     m <- colMeans(X)               # lazy sink
//!     as.vector(sum(abs(m) < 0.1))   # forced on extraction
//! "#).unwrap();
//! assert_eq!(out.as_num().unwrap(), 4.0);
//! ```
//!
//! Supported language surface: numeric/string/logical scalars, numeric
//! vectors, FlashR matrices, `<-`/`=` assignment, arithmetic with R
//! precedence (including `%*%` and `%%`), comparisons, `!`/`&`/`|`,
//! `function` closures, `if`/`else`, `for`/`while`/`break`, `:` ranges,
//! indexing `x[i, j]` / `x[, j]` / `x[i, ]`, and the overridden `base`
//! functions of the paper's Tables 2–3 (see [`builtins`]).

pub mod ast;
pub mod builtins;
pub mod env;
pub mod interp;
pub mod parser;
pub mod token;
pub mod value;

pub use interp::Interp;
pub use parser::parse_program;
pub use value::{RError, Value};
