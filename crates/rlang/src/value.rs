//! Runtime values of the R subset.

use crate::ast::Expr;
use crate::env::EnvRef;
use flashr_core::fm::FM;
use std::fmt;
use std::rc::Rc;

/// Interpreter and parser errors.
#[derive(Debug, Clone)]
pub enum RError {
    Syntax(String),
    Eval(String),
}

impl fmt::Display for RError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RError::Syntax(m) => write!(f, "syntax error: {m}"),
            RError::Eval(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for RError {}

/// A user-defined function with its captured environment.
pub struct Closure {
    pub params: Vec<(String, Option<Expr>)>,
    pub body: Expr,
    pub env: EnvRef,
}

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    Null,
    Num(f64),
    Bool(bool),
    Str(String),
    /// A small numeric vector (R vectors; kept in memory).
    Vec(Rc<Vec<f64>>),
    /// A FlashR matrix: tall/lazy, a pending sink, or a small dense one.
    Matrix(FM),
    Closure(Rc<Closure>),
    /// A builtin by name (see `builtins`).
    Builtin(&'static str),
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Num(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Vec(v) => {
                write!(f, "c(")?;
                for (i, x) in v.iter().take(8).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                if v.len() > 8 {
                    write!(f, ", …")?;
                }
                write!(f, ")")
            }
            Value::Matrix(m) => write!(f, "{m:?}"),
            Value::Closure(c) => write!(f, "function({} params)", c.params.len()),
            Value::Builtin(n) => write!(f, "<builtin {n}>"),
        }
    }
}

impl Value {
    /// Scalar extraction for values that don't need the engine (numbers,
    /// logicals, length-1 vectors).
    pub fn as_num(&self) -> Result<f64, RError> {
        match self {
            Value::Num(v) => Ok(*v),
            Value::Bool(b) => Ok(f64::from(*b)),
            Value::Vec(v) if v.len() == 1 => Ok(v[0]),
            other => Err(RError::Eval(format!("expected a number, got {other:?}"))),
        }
    }

    /// The matrix inside, if any.
    pub fn as_matrix(&self) -> Result<&FM, RError> {
        match self {
            Value::Matrix(m) => Ok(m),
            other => Err(RError::Eval(format!("expected a matrix, got {other:?}"))),
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Result<&str, RError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(RError::Eval(format!("expected a string, got {other:?}"))),
        }
    }

    /// R's `is.null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Control flow out of a block.
pub enum Flow {
    Val(Value),
    Break,
    Next,
    Return(Value),
}

impl Flow {
    /// Unwrap a plain value, treating `return` as a value escape.
    pub fn into_value(self) -> Value {
        match self {
            Flow::Val(v) | Flow::Return(v) => v,
            Flow::Break | Flow::Next => Value::Null,
        }
    }
}
