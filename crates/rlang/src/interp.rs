//! The evaluator: R semantics on top of the FlashR engine.
//!
//! Matrices stay lazy exactly as in FlashR: building expressions extends
//! the DAG, and *sink* values (aggregations) are forced only when a
//! scalar is needed, when they meet element-wise arithmetic, or when the
//! program extracts them (`as.vector`, indexing, `print`) — the paper's
//! materialization triggers (§3.4).
//!
//! One pragmatic extension beyond strict R conformability: element-wise
//! arithmetic between a `1×k` and a `k×1` small matrix aligns the shapes
//! (R programs, the paper's Figure 2 included, habitually mix row- and
//! column-vector results).

use crate::ast::{Arg, BinOp, Expr, UnOp};
use crate::builtins;
use crate::env::{Env, EnvRef};
use crate::parser::parse_program;
use crate::value::{Closure, Flow, RError, Value};
use flashr_core::fm::FM;
use flashr_core::ops::BinaryOp;
use flashr_core::session::FlashCtx;
use flashr_linalg::Dense;
use std::rc::Rc;

/// An R interpreter bound to a FlashR execution context.
pub struct Interp {
    ctx: FlashCtx,
    global: EnvRef,
    seed: std::cell::Cell<u64>,
}

impl Interp {
    /// Fresh interpreter over `ctx`.
    pub fn new(ctx: FlashCtx) -> Interp {
        Interp { ctx, global: Env::global(), seed: std::cell::Cell::new(0x5EED) }
    }

    /// Deterministic seed stream for `runif.matrix` / `rnorm.matrix`.
    pub fn next_seed(&self) -> u64 {
        let s = self.seed.get();
        self.seed.set(s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407));
        s
    }

    /// The engine context (builtins use it to materialize).
    pub fn ctx(&self) -> &FlashCtx {
        &self.ctx
    }

    /// The global environment.
    pub fn global_env(&self) -> &EnvRef {
        &self.global
    }

    /// Define a variable in the global environment (host → R handoff).
    pub fn define(&self, name: &str, value: Value) {
        Env::set(&self.global, name, value);
    }

    /// Parse and evaluate a program; returns the last expression's value.
    pub fn eval_str(&mut self, src: &str) -> Result<Value, RError> {
        let prog = parse_program(src)?;
        let mut last = Value::Null;
        for e in prog {
            match self.eval(&self.global.clone(), &e)? {
                Flow::Val(v) => last = v,
                Flow::Return(v) => return Ok(v),
                Flow::Break | Flow::Next => {
                    return Err(RError::Eval("break/next outside a loop".into()))
                }
            }
        }
        Ok(last)
    }

    /// Force a pending sink into a small materialized matrix.
    pub fn force_fm(&self, m: &FM) -> FM {
        match m {
            FM::Sink { .. } => m.materialize(&self.ctx),
            other => other.clone(),
        }
    }

    /// R's condition coercion: scalars directly; matrices use their first
    /// element (R's legacy `if (matrix)` behavior).
    pub fn truthy(&self, v: &Value) -> Result<bool, RError> {
        match v {
            Value::Bool(b) => Ok(*b),
            Value::Num(x) => Ok(*x != 0.0),
            Value::Vec(xs) if !xs.is_empty() => Ok(xs[0] != 0.0),
            Value::Matrix(m) => {
                let f = self.force_fm(m);
                Ok(f.get(&self.ctx, 0, 0) != 0.0)
            }
            other => Err(RError::Eval(format!("cannot use {other:?} as a condition"))),
        }
    }

    pub(crate) fn eval_value(&self, env: &EnvRef, e: &Expr) -> Result<Value, RError> {
        match self.eval(env, e)? {
            Flow::Val(v) | Flow::Return(v) => Ok(v),
            Flow::Break | Flow::Next => Err(RError::Eval("break/next in expression".into())),
        }
    }

    fn eval(&self, env: &EnvRef, e: &Expr) -> Result<Flow, RError> {
        match e {
            Expr::Num(v) => Ok(Flow::Val(Value::Num(*v))),
            Expr::Str(s) => Ok(Flow::Val(Value::Str(s.clone()))),
            Expr::Bool(b) => Ok(Flow::Val(Value::Bool(*b))),
            Expr::Null => Ok(Flow::Val(Value::Null)),
            Expr::Ident(name) => match Env::get(env, name) {
                Some(v) => Ok(Flow::Val(v)),
                None => match builtins::lookup(name) {
                    Some(b) => Ok(Flow::Val(Value::Builtin(b))),
                    None => Err(RError::Eval(format!("object '{name}' not found"))),
                },
            },
            Expr::Unary(op, inner) => {
                let v = self.eval_value(env, inner)?;
                Ok(Flow::Val(self.unary(*op, v)?))
            }
            Expr::Binary(op, l, r) => {
                // Short-circuit logicals on scalars.
                if matches!(op, BinOp::And | BinOp::Or) {
                    let lv = self.eval_value(env, l)?;
                    if !matches!(lv, Value::Matrix(_)) {
                        let lb = self.truthy(&lv)?;
                        if *op == BinOp::And && !lb {
                            return Ok(Flow::Val(Value::Bool(false)));
                        }
                        if *op == BinOp::Or && lb {
                            return Ok(Flow::Val(Value::Bool(true)));
                        }
                        let rv = self.eval_value(env, r)?;
                        return Ok(Flow::Val(Value::Bool(self.truthy(&rv)?)));
                    }
                    let rv = self.eval_value(env, r)?;
                    return Ok(Flow::Val(self.binary(*op, lv, rv)?));
                }
                let lv = self.eval_value(env, l)?;
                let rv = self.eval_value(env, r)?;
                Ok(Flow::Val(self.binary(*op, lv, rv)?))
            }
            Expr::Assign(target, value) => {
                let v = self.eval_value(env, value)?;
                match target.as_ref() {
                    Expr::Ident(name) => {
                        Env::set(env, name, v.clone());
                        Ok(Flow::Val(v))
                    }
                    Expr::Index { object, args } => {
                        self.index_assign(env, object, args, v.clone())?;
                        Ok(Flow::Val(v))
                    }
                    other => Err(RError::Eval(format!("invalid assignment target {other:?}"))),
                }
            }
            Expr::Call { callee, args } => {
                let f = self.eval_value(env, callee)?;
                let mut eargs: Vec<(Option<String>, Value)> = Vec::with_capacity(args.len());
                for a in args {
                    let v = match &a.value {
                        Some(e) => self.eval_value(env, e)?,
                        None => return Err(RError::Eval("empty argument in call".into())),
                    };
                    eargs.push((a.name.clone(), v));
                }
                Ok(Flow::Val(self.call(f, eargs)?))
            }
            Expr::Index { object, args } => {
                let obj = self.eval_value(env, object)?;
                Ok(Flow::Val(self.index(env, obj, args)?))
            }
            Expr::Function { params, body } => Ok(Flow::Val(Value::Closure(Rc::new(Closure {
                params: params.clone(),
                body: (**body).clone(),
                env: env.clone(),
            })))),
            Expr::If { cond, then, alt } => {
                let c = self.eval_value(env, cond)?;
                if self.truthy(&c)? {
                    self.eval(env, then)
                } else if let Some(a) = alt {
                    self.eval(env, a)
                } else {
                    Ok(Flow::Val(Value::Null))
                }
            }
            Expr::For { var, seq, body } => {
                let s = self.eval_value(env, seq)?;
                let items: Vec<f64> = match s {
                    Value::Vec(v) => v.as_ref().clone(),
                    Value::Num(v) => vec![v],
                    Value::Matrix(m) => self.force_fm(&m).to_vec(&self.ctx),
                    other => return Err(RError::Eval(format!("cannot iterate over {other:?}"))),
                };
                for item in items {
                    Env::set(env, var, Value::Num(item));
                    match self.eval(env, body)? {
                        Flow::Break => break,
                        Flow::Next | Flow::Val(_) => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Val(Value::Null))
            }
            Expr::While { cond, body } => {
                let mut guard = 0u64;
                loop {
                    let c = self.eval_value(env, cond)?;
                    if !self.truthy(&c)? {
                        break;
                    }
                    guard += 1;
                    if guard > 100_000_000 {
                        return Err(RError::Eval("while loop exceeded 1e8 iterations".into()));
                    }
                    match self.eval(env, body)? {
                        Flow::Break => break,
                        Flow::Next | Flow::Val(_) => {}
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Val(Value::Null))
            }
            Expr::Block(stmts) => {
                let mut last = Value::Null;
                for s in stmts {
                    match self.eval(env, s)? {
                        Flow::Val(v) => last = v,
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Val(last))
            }
            Expr::Break => Ok(Flow::Break),
            Expr::Next => Ok(Flow::Next),
            Expr::Return(v) => {
                let val = match v {
                    Some(e) => self.eval_value(env, e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(val))
            }
        }
    }

    /// Call a closure or builtin.
    pub fn call(&self, f: Value, args: Vec<(Option<String>, Value)>) -> Result<Value, RError> {
        match f {
            Value::Closure(c) => {
                let frame = Env::child(&c.env);
                // Named args first, then positional fill, then defaults.
                let mut taken = vec![false; c.params.len()];
                let mut positional: Vec<Value> = Vec::new();
                for (name, v) in args {
                    match name {
                        Some(n) => match c.params.iter().position(|(p, _)| *p == n) {
                            Some(i) => {
                                Env::set(&frame, &n, v);
                                taken[i] = true;
                            }
                            None => return Err(RError::Eval(format!("unused argument '{n}'"))),
                        },
                        None => positional.push(v),
                    }
                }
                let mut pos_iter = positional.into_iter();
                for (i, (pname, default)) in c.params.iter().enumerate() {
                    if taken[i] {
                        continue;
                    }
                    if let Some(v) = pos_iter.next() {
                        Env::set(&frame, pname, v);
                    } else if let Some(d) = default {
                        let dv = self.eval_value(&frame, d)?;
                        Env::set(&frame, pname, dv);
                    } else {
                        // R is lazy about missing args; we bind NULL.
                        Env::set(&frame, pname, Value::Null);
                    }
                }
                if pos_iter.next().is_some() {
                    return Err(RError::Eval("too many arguments".into()));
                }
                Ok(self.eval(&frame, &c.body)?.into_value())
            }
            Value::Builtin(name) => builtins::call(self, name, args),
            other => Err(RError::Eval(format!("attempt to call a non-function: {other:?}"))),
        }
    }

    fn unary(&self, op: UnOp, v: Value) -> Result<Value, RError> {
        match op {
            UnOp::Plus => Ok(v),
            UnOp::Neg => match v {
                Value::Num(x) => Ok(Value::Num(-x)),
                Value::Bool(b) => Ok(Value::Num(-f64::from(b))),
                Value::Vec(xs) => Ok(Value::Vec(Rc::new(xs.iter().map(|x| -x).collect()))),
                Value::Matrix(m) => Ok(Value::Matrix(-(&self.force_fm(&m)))),
                other => Err(RError::Eval(format!("invalid argument to unary minus: {other:?}"))),
            },
            UnOp::Not => match v {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Num(x) => Ok(Value::Bool(x == 0.0)),
                Value::Null => Ok(Value::Bool(true)),
                Value::Vec(xs) => {
                    Ok(Value::Vec(Rc::new(xs.iter().map(|x| f64::from(*x == 0.0)).collect())))
                }
                Value::Matrix(m) => Ok(Value::Matrix(self.force_fm(&m).not())),
                other => Err(RError::Eval(format!("invalid argument to '!': {other:?}"))),
            },
        }
    }

    fn num_binop(op: BinOp, a: f64, b: f64) -> f64 {
        match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Pow => a.powf(b),
            BinOp::Mod => a - (a / b).floor() * b, // R's %% sign convention
            BinOp::Lt => f64::from(a < b),
            BinOp::Gt => f64::from(a > b),
            BinOp::Le => f64::from(a <= b),
            BinOp::Ge => f64::from(a >= b),
            BinOp::Eq => f64::from(a == b),
            BinOp::Ne => f64::from(a != b),
            BinOp::And => f64::from(a != 0.0 && b != 0.0),
            BinOp::Or => f64::from(a != 0.0 || b != 0.0),
            BinOp::Range | BinOp::MatMul => unreachable!("handled before num_binop"),
        }
    }

    fn fm_binop(op: BinOp) -> BinaryOp {
        match op {
            BinOp::Add => BinaryOp::Add,
            BinOp::Sub => BinaryOp::Sub,
            BinOp::Mul => BinaryOp::Mul,
            BinOp::Div => BinaryOp::Div,
            BinOp::Pow => BinaryOp::Pow,
            BinOp::Mod => BinaryOp::Rem,
            BinOp::Lt => BinaryOp::Lt,
            BinOp::Gt => BinaryOp::Gt,
            BinOp::Le => BinaryOp::Le,
            BinOp::Ge => BinaryOp::Ge,
            BinOp::Eq => BinaryOp::Eq,
            BinOp::Ne => BinaryOp::Ne,
            BinOp::And => BinaryOp::And,
            BinOp::Or => BinaryOp::Or,
            BinOp::Range | BinOp::MatMul => unreachable!("handled before fm_binop"),
        }
    }

    /// Evaluate a binary operation with R coercion rules.
    pub fn binary(&self, op: BinOp, l: Value, r: Value) -> Result<Value, RError> {
        if op == BinOp::Range {
            let a = l.as_num()?;
            let b = r.as_num()?;
            let mut v = Vec::new();
            if a <= b {
                let mut x = a;
                while x <= b + 1e-9 {
                    v.push(x);
                    x += 1.0;
                }
            } else {
                let mut x = a;
                while x >= b - 1e-9 {
                    v.push(x);
                    x -= 1.0;
                }
            }
            return Ok(Value::Vec(Rc::new(v)));
        }
        if op == BinOp::MatMul {
            return self.matmul(l, r);
        }
        // String equality.
        if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
            return match op {
                BinOp::Eq => Ok(Value::Bool(a == b)),
                BinOp::Ne => Ok(Value::Bool(a != b)),
                _ => Err(RError::Eval("invalid string operation".into())),
            };
        }

        match (l, r) {
            (Value::Matrix(a), rb) => self.matrix_binary(op, self.force_fm(&a), rb, false),
            (la, Value::Matrix(b)) => self.matrix_binary(op, self.force_fm(&b), la, true),
            (Value::Vec(a), Value::Vec(b)) => {
                let (long, short) = if a.len() >= b.len() { (&a, &b) } else { (&b, &a) };
                if short.is_empty() || long.len() % short.len() != 0 {
                    return Err(RError::Eval("vector recycling length mismatch".into()));
                }
                let swapped = a.len() < b.len();
                let out: Vec<f64> = long
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| {
                        let y = short[i % short.len()];
                        if swapped {
                            Self::num_binop(op, y, x)
                        } else {
                            Self::num_binop(op, x, y)
                        }
                    })
                    .collect();
                Ok(Value::Vec(Rc::new(out)))
            }
            (Value::Vec(a), rb) => {
                let y = rb.as_num()?;
                Ok(Value::Vec(Rc::new(a.iter().map(|&x| Self::num_binop(op, x, y)).collect())))
            }
            (la, Value::Vec(b)) => {
                let x = la.as_num()?;
                Ok(Value::Vec(Rc::new(b.iter().map(|&y| Self::num_binop(op, x, y)).collect())))
            }
            (la, rb) => {
                let a = la.as_num()?;
                let b = rb.as_num()?;
                let out = Self::num_binop(op, a, b);
                if matches!(
                    op,
                    BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
                        | BinOp::And
                        | BinOp::Or
                ) {
                    Ok(Value::Bool(out != 0.0))
                } else {
                    Ok(Value::Num(out))
                }
            }
        }
    }

    /// Element-wise op where one side is a matrix. `swapped` means the
    /// matrix was the right operand.
    fn matrix_binary(&self, op: BinOp, m: FM, other: Value, swapped: bool) -> Result<Value, RError> {
        let bop = Self::fm_binop(op);
        match other {
            Value::Num(x) => Ok(Value::Matrix(m.binary_scalar(bop, x, swapped))),
            Value::Bool(b) => Ok(Value::Matrix(m.binary_scalar(bop, f64::from(b), swapped))),
            Value::Vec(v) if v.len() == 1 => Ok(Value::Matrix(m.binary_scalar(bop, v[0], swapped))),
            Value::Vec(v) => {
                // R recycles vectors down the columns: valid when the
                // vector length equals the row count.
                let fm_v = if v.len() as u64 == m.nrow() {
                    self.vec_to_fm(&v)
                } else {
                    return Err(RError::Eval(format!(
                        "vector of length {} does not recycle against a {}x{} matrix (use sweep)",
                        v.len(),
                        m.nrow(),
                        m.ncol()
                    )));
                };
                if swapped {
                    Ok(Value::Matrix(fm_v.binary(bop, &m, false)))
                } else {
                    Ok(Value::Matrix(m.binary(bop, &fm_v, false)))
                }
            }
            Value::Matrix(o) => {
                let o = self.force_fm(&o);
                // 1×k / k×1 alignment (see module docs).
                let (a, b) = if m.nrow() == o.ncol() && m.ncol() == o.nrow() && m.nrow() != o.nrow()
                {
                    (m, o.t())
                } else {
                    (m, o)
                };
                if swapped {
                    Ok(Value::Matrix(b.binary(bop, &a, false)))
                } else {
                    Ok(Value::Matrix(a.binary(bop, &b, false)))
                }
            }
            other => Err(RError::Eval(format!("invalid matrix operand {other:?}"))),
        }
    }

    /// `%*%` with R-style vector promotion.
    fn matmul(&self, l: Value, r: Value) -> Result<Value, RError> {
        let to_fm = |interp: &Interp, v: Value, want_rows: Option<u64>| -> Result<FM, RError> {
            match v {
                Value::Matrix(m) => Ok(interp.force_fm(&m)),
                Value::Num(x) => Ok(FM::from_dense(Dense::from_vec(1, 1, vec![x]))),
                Value::Vec(xs) => {
                    // Promote to whatever conforms: row if the LHS wants
                    // columns matching len, else column.
                    let n = xs.len();
                    let as_col = Dense::from_vec(n, 1, xs.as_ref().clone());
                    match want_rows {
                        Some(rows) if rows as usize == n => Ok(FM::from_dense(as_col)),
                        _ => Ok(FM::from_dense(as_col)),
                    }
                }
                other => Err(RError::Eval(format!("non-numeric %*% operand {other:?}"))),
            }
        };
        let lf = to_fm(self, l, None)?;
        let rf = to_fm(self, r, Some(lf.ncol()))?;
        Ok(Value::Matrix(lf.matmul(&rf)))
    }

    /// A small f64 vector as an n×1 FlashR column.
    pub fn vec_to_fm(&self, v: &[f64]) -> FM {
        FM::from_vec(&self.ctx, v)
    }

    /// Indexing `x[...]`.
    fn index(&self, _env: &EnvRef, obj: Value, args: &[Arg]) -> Result<Value, RError> {
        match obj {
            Value::Vec(v) => {
                if args.len() != 1 {
                    return Err(RError::Eval("vectors take one index".into()));
                }
                let idx = match &args[0].value {
                    Some(e) => e,
                    None => return Err(RError::Eval("missing vector index".into())),
                };
                // args already evaluated? No — index exprs arrive raw.
                let iv = self.eval_value(_env, idx)?;
                match iv {
                    Value::Num(i) => {
                        let i = i as usize;
                        if i < 1 || i > v.len() {
                            return Err(RError::Eval(format!("index {i} out of bounds")));
                        }
                        Ok(Value::Num(v[i - 1]))
                    }
                    Value::Vec(idxs) => {
                        let mut out = Vec::with_capacity(idxs.len());
                        for &i in idxs.iter() {
                            let i = i as usize;
                            if i < 1 || i > v.len() {
                                return Err(RError::Eval(format!("index {i} out of bounds")));
                            }
                            out.push(v[i - 1]);
                        }
                        Ok(Value::Vec(Rc::new(out)))
                    }
                    other => Err(RError::Eval(format!("invalid index {other:?}"))),
                }
            }
            Value::Matrix(m) => {
                if args.len() != 2 {
                    return Err(RError::Eval("matrices take two indices".into()));
                }
                let row = match &args[0].value {
                    Some(e) => Some(self.eval_value(_env, e)?),
                    None => None,
                };
                let col = match &args[1].value {
                    Some(e) => Some(self.eval_value(_env, e)?),
                    None => None,
                };
                let m = self.force_fm(&m);
                match (row, col) {
                    (Some(r), Some(c)) => {
                        let (ri, ci) = (r.as_num()? as u64, c.as_num()? as u64);
                        if ri < 1 || ri > m.nrow() || ci < 1 || ci > m.ncol() {
                            return Err(RError::Eval("matrix index out of bounds".into()));
                        }
                        Ok(Value::Num(m.get(&self.ctx, ri - 1, ci - 1)))
                    }
                    (None, Some(c)) => {
                        let cols: Vec<usize> = match c {
                            Value::Num(j) => vec![j as usize - 1],
                            Value::Vec(js) => js.iter().map(|&j| j as usize - 1).collect(),
                            other => return Err(RError::Eval(format!("invalid column index {other:?}"))),
                        };
                        for &j in &cols {
                            if j >= m.ncol() as usize {
                                return Err(RError::Eval("column index out of bounds".into()));
                            }
                        }
                        Ok(Value::Matrix(m.cols(&cols)))
                    }
                    (Some(r), None) => {
                        let ri = r.as_num()? as u64;
                        if ri < 1 || ri > m.nrow() {
                            return Err(RError::Eval("row index out of bounds".into()));
                        }
                        let row: Vec<f64> =
                            (0..m.ncol()).map(|j| m.get(&self.ctx, ri - 1, j)).collect();
                        Ok(Value::Vec(Rc::new(row)))
                    }
                    (None, None) => Ok(Value::Matrix(m)),
                }
            }
            other => Err(RError::Eval(format!("object {other:?} is not subsettable"))),
        }
    }

    /// `x[i] <- v` / `x[i, j] <- v` for vectors and small matrices.
    fn index_assign(
        &self,
        env: &EnvRef,
        object: &Expr,
        args: &[Arg],
        value: Value,
    ) -> Result<(), RError> {
        let name = match object {
            Expr::Ident(n) => n.clone(),
            other => return Err(RError::Eval(format!("cannot index-assign into {other:?}"))),
        };
        let current = Env::get(env, &name)
            .ok_or_else(|| RError::Eval(format!("object '{name}' not found")))?;
        match current {
            Value::Vec(v) => {
                if args.len() != 1 {
                    return Err(RError::Eval("vectors take one index".into()));
                }
                let idx = self
                    .eval_value(env, args[0].value.as_ref().ok_or_else(|| {
                        RError::Eval("missing index".into())
                    })?)?
                    .as_num()? as usize;
                if idx < 1 || idx > v.len() {
                    return Err(RError::Eval("index out of bounds".into()));
                }
                let mut nv = v.as_ref().clone();
                nv[idx - 1] = value.as_num()?;
                Env::set(env, &name, Value::Vec(Rc::new(nv)));
                Ok(())
            }
            Value::Matrix(m) => {
                let m = self.force_fm(&m);
                if let FM::Small(d) = &m {
                    if args.len() != 2 {
                        return Err(RError::Eval("matrices take two indices".into()));
                    }
                    let ri = self
                        .eval_value(env, args[0].value.as_ref().ok_or_else(|| {
                            RError::Eval("missing row index".into())
                        })?)?
                        .as_num()? as usize;
                    let ci = self
                        .eval_value(env, args[1].value.as_ref().ok_or_else(|| {
                            RError::Eval("missing column index".into())
                        })?)?
                        .as_num()? as usize;
                    if ri < 1 || ri > d.rows() || ci < 1 || ci > d.cols() {
                        return Err(RError::Eval("matrix index out of bounds".into()));
                    }
                    let mut nd = d.clone();
                    nd.set(ri - 1, ci - 1, value.as_num()?);
                    Env::set(env, &name, Value::Matrix(FM::from_dense(nd)));
                    Ok(())
                } else {
                    Err(RError::Eval(
                        "element assignment into large matrices is not supported".into(),
                    ))
                }
            }
            other => Err(RError::Eval(format!("cannot index-assign into {other:?}"))),
        }
    }
}
