//! Lexically scoped environments (R's environment chain).

use crate::value::Value;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A shared, mutable environment frame.
pub type EnvRef = Rc<RefCell<Env>>;

/// One frame: bindings plus the enclosing frame.
#[derive(Default)]
pub struct Env {
    vars: HashMap<String, Value>,
    parent: Option<EnvRef>,
}

impl Env {
    /// Fresh global frame.
    pub fn global() -> EnvRef {
        Rc::new(RefCell::new(Env::default()))
    }

    /// A child frame for a function call.
    pub fn child(parent: &EnvRef) -> EnvRef {
        Rc::new(RefCell::new(Env { vars: HashMap::new(), parent: Some(parent.clone()) }))
    }

    /// Look a name up through the chain.
    pub fn get(env: &EnvRef, name: &str) -> Option<Value> {
        let e = env.borrow();
        if let Some(v) = e.vars.get(name) {
            return Some(v.clone());
        }
        match &e.parent {
            Some(p) => Env::get(p, name),
            None => None,
        }
    }

    /// `<-` assigns in the *current* frame (R semantics).
    pub fn set(env: &EnvRef, name: &str, value: Value) {
        env.borrow_mut().vars.insert(name.to_string(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_walks_the_chain() {
        let g = Env::global();
        Env::set(&g, "x", Value::Num(1.0));
        let c = Env::child(&g);
        assert!(matches!(Env::get(&c, "x"), Some(Value::Num(v)) if v == 1.0));
        // Shadowing in the child does not touch the parent.
        Env::set(&c, "x", Value::Num(2.0));
        assert!(matches!(Env::get(&c, "x"), Some(Value::Num(v)) if v == 2.0));
        assert!(matches!(Env::get(&g, "x"), Some(Value::Num(v)) if v == 1.0));
    }

    #[test]
    fn missing_names_are_none() {
        let g = Env::global();
        assert!(Env::get(&g, "nope").is_none());
    }
}
