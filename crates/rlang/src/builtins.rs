//! The overridden `base` functions (paper Tables 2–3) plus the GenOps
//! exposed to R (`inner.prod`, `agg.row`, `groupby.row`, `set.cache`,
//! `materialize`, ...). Every matrix-valued builtin dispatches to the
//! lazy [`FM`] API, so R programs extend the engine's DAG exactly like
//! native Rust callers.

use crate::interp::Interp;
use crate::value::{RError, Value};
use flashr_core::fm::FM;
use flashr_core::ops::{AggOp, BinaryOp, UnaryOp};
use flashr_linalg::Dense;
use std::rc::Rc;

/// All builtin names, used for identifier resolution.
const NAMES: &[&str] = &[
    "matrix", "rep", "rep.int", "c", "length", "dim", "nrow", "ncol", "t", "cbind", "rbind",
    "diag", "runif.matrix", "rnorm.matrix", "exp", "log", "log2", "log10", "log1p", "sqrt",
    "abs", "floor", "ceiling", "round", "sign", "sigmoid", "sum", "mean", "min", "max", "any",
    "all", "rowSums", "colSums", "rowMeans", "colMeans", "pmin", "pmax", "inner.prod", "agg.row",
    "groupby.row", "groupby.col", "agg.col", "sweep", "set.cache", "materialize", "as.vector", "as.matrix", "unique",
    "is.null", "print", "cat", "crossprod", "solve", "which.min", "which.max", "seq_len",
    "stopifnot", "numeric",
];

/// Resolve a builtin by name.
pub fn lookup(name: &str) -> Option<&'static str> {
    NAMES.iter().copied().find(|n| *n == name)
}

/// Positional/named argument unpacking.
struct Args {
    positional: Vec<Value>,
    named: Vec<(String, Value)>,
}

impl Args {
    fn new(raw: Vec<(Option<String>, Value)>) -> Args {
        let mut positional = Vec::new();
        let mut named = Vec::new();
        for (n, v) in raw {
            match n {
                Some(n) => named.push((n, v)),
                None => positional.push(v),
            }
        }
        Args { positional, named }
    }

    fn pos(&self, i: usize, what: &str) -> Result<&Value, RError> {
        self.positional
            .get(i)
            .ok_or_else(|| RError::Eval(format!("missing argument {} to {what}", i + 1)))
    }

    fn named(&self, name: &str) -> Option<&Value> {
        self.named.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Named first, then positional index.
    fn get(&self, name: &str, i: usize) -> Option<&Value> {
        self.named(name).or_else(|| self.positional.get(i))
    }
}

fn fm_of(interp: &Interp, v: &Value) -> Result<FM, RError> {
    match v {
        Value::Matrix(m) => Ok(interp.force_fm(m)),
        Value::Vec(xs) => Ok(interp.vec_to_fm(xs)),
        Value::Num(x) => Ok(FM::from_dense(Dense::from_vec(1, 1, vec![*x]))),
        other => Err(RError::Eval(format!("expected a matrix, got {other:?}"))),
    }
}

fn small_vec_of(interp: &Interp, v: &Value) -> Result<Vec<f64>, RError> {
    match v {
        Value::Vec(xs) => Ok(xs.as_ref().clone()),
        Value::Num(x) => Ok(vec![*x]),
        Value::Bool(b) => Ok(vec![f64::from(*b)]),
        Value::Matrix(m) => {
            let f = interp.force_fm(m);
            if f.len() > 4_000_000 {
                return Err(RError::Eval("matrix too large to convert to a vector".into()));
            }
            Ok(f.to_vec(interp.ctx()))
        }
        other => Err(RError::Eval(format!("cannot coerce {other:?} to a vector"))),
    }
}

fn binop_of(name: &str) -> Result<BinaryOp, RError> {
    Ok(match name {
        "+" => BinaryOp::Add,
        "-" => BinaryOp::Sub,
        "*" => BinaryOp::Mul,
        "/" => BinaryOp::Div,
        "min" | "pmin" => BinaryOp::Min,
        "max" | "pmax" => BinaryOp::Max,
        "euclidean" => BinaryOp::EuclidSq,
        other => return Err(RError::Eval(format!("unknown element function '{other}'"))),
    })
}

fn unary_elementwise(interp: &Interp, v: &Value, op: UnaryOp, f: fn(f64) -> f64) -> Result<Value, RError> {
    match v {
        Value::Num(x) => Ok(Value::Num(f(*x))),
        Value::Bool(b) => Ok(Value::Num(f(f64::from(*b)))),
        Value::Vec(xs) => Ok(Value::Vec(Rc::new(xs.iter().map(|&x| f(x)).collect()))),
        Value::Matrix(m) => Ok(Value::Matrix(interp.force_fm(m).unary(op))),
        other => Err(RError::Eval(format!("non-numeric argument: {other:?}"))),
    }
}

fn agg_value(interp: &Interp, v: &Value, op: AggOp, what: &str) -> Result<Value, RError> {
    match v {
        Value::Num(x) => Ok(Value::Num(match op {
            AggOp::Any | AggOp::All => f64::from(*x != 0.0),
            _ => *x,
        })),
        Value::Bool(b) => Ok(Value::Num(f64::from(*b))),
        Value::Vec(xs) => {
            let mut acc = op.identity();
            for &x in xs.iter() {
                acc = op.fold(acc, x);
            }
            if op == AggOp::Mean {
                acc /= xs.len().max(1) as f64;
            }
            Ok(Value::Num(acc))
        }
        Value::Matrix(m) => {
            // Lazy: return the sink; it forces on extraction.
            let m = interp.force_fm(m);
            Ok(Value::Matrix(match op {
                AggOp::Sum => m.sum(),
                AggOp::Mean => m.mean_all(),
                AggOp::Min => m.min_all(),
                AggOp::Max => m.max_all(),
                AggOp::Any => m.any_nz(),
                AggOp::All => m.all_nz(),
                _ => return Err(RError::Eval(format!("bad aggregate for {what}"))),
            }))
        }
        other => Err(RError::Eval(format!("non-numeric argument to {what}: {other:?}"))),
    }
}

/// Invoke builtin `name`.
pub fn call(interp: &Interp, name: &str, raw: Vec<(Option<String>, Value)>) -> Result<Value, RError> {
    let a = Args::new(raw);
    let ctx = interp.ctx();
    match name {
        // ----------------------------------------------------- structure
        "matrix" => {
            let data = small_vec_of(interp, a.pos(0, "matrix")?)?;
            let nrow = a.get("nrow", 1).map(|v| v.as_num()).transpose()?.map(|v| v as usize);
            let ncol = a.get("ncol", 2).map(|v| v.as_num()).transpose()?.map(|v| v as usize);
            let (r, c) = match (nrow, ncol) {
                (Some(r), Some(c)) => (r, c),
                (Some(r), None) => (r, data.len().div_ceil(r.max(1))),
                (None, Some(c)) => (data.len().div_ceil(c.max(1)), c),
                (None, None) => (data.len(), 1),
            };
            if r * c == 0 {
                return Err(RError::Eval("matrix with zero extent".into()));
            }
            // Column-major fill with recycling, like R.
            let d = Dense::from_fn(r, c, |i, j| data[(j * r + i) % data.len().max(1)]);
            Ok(Value::Matrix(FM::from_dense(d)))
        }
        "numeric" => {
            let n = a.pos(0, "numeric")?.as_num()? as usize;
            Ok(Value::Vec(Rc::new(vec![0.0; n])))
        }
        "rep" | "rep.int" => {
            let times = a.pos(1, name)?.as_num()? as u64;
            match a.pos(0, name)? {
                Value::Num(x) => {
                    if times > 100_000 {
                        // Large replications become lazy tall columns.
                        Ok(Value::Matrix(FM::constant(times, 1, *x)))
                    } else {
                        Ok(Value::Vec(Rc::new(vec![*x; times as usize])))
                    }
                }
                Value::Vec(xs) => {
                    let mut out = Vec::with_capacity(xs.len() * times as usize);
                    for _ in 0..times {
                        out.extend_from_slice(xs);
                    }
                    Ok(Value::Vec(Rc::new(out)))
                }
                other => Err(RError::Eval(format!("cannot rep {other:?}"))),
            }
        }
        "c" => {
            let mut out = Vec::new();
            for v in &a.positional {
                out.extend(small_vec_of(interp, v)?);
            }
            Ok(Value::Vec(Rc::new(out)))
        }
        "seq_len" => {
            let n = a.pos(0, "seq_len")?.as_num()? as usize;
            Ok(Value::Vec(Rc::new((1..=n).map(|i| i as f64).collect())))
        }
        "length" => Ok(Value::Num(match a.pos(0, "length")? {
            Value::Vec(v) => v.len() as f64,
            Value::Matrix(m) => m.len() as f64,
            Value::Null => 0.0,
            _ => 1.0,
        })),
        "dim" => match a.pos(0, "dim")? {
            Value::Matrix(m) => Ok(Value::Vec(Rc::new(vec![m.nrow() as f64, m.ncol() as f64]))),
            _ => Ok(Value::Null),
        },
        "nrow" => match a.pos(0, "nrow")? {
            Value::Matrix(m) => Ok(Value::Num(m.nrow() as f64)),
            _ => Ok(Value::Null),
        },
        "ncol" => match a.pos(0, "ncol")? {
            Value::Matrix(m) => Ok(Value::Num(m.ncol() as f64)),
            _ => Ok(Value::Null),
        },
        "t" => match a.pos(0, "t")? {
            Value::Matrix(m) => Ok(Value::Matrix(interp.force_fm(m).t())),
            Value::Vec(v) => Ok(Value::Matrix(FM::from_dense(Dense::from_vec(
                1,
                v.len(),
                v.as_ref().clone(),
            )))),
            Value::Num(x) => Ok(Value::Matrix(FM::from_dense(Dense::from_vec(1, 1, vec![*x])))),
            other => Err(RError::Eval(format!("cannot transpose {other:?}"))),
        },
        "cbind" => {
            let fms: Vec<FM> = a
                .positional
                .iter()
                .map(|v| fm_of(interp, v))
                .collect::<Result<_, _>>()?;
            if fms.iter().all(|m| m.is_small()) {
                // Small-world cbind.
                let rows = fms[0].nrow() as usize;
                let total: usize = fms.iter().map(|m| m.ncol() as usize).sum();
                let mut d = Dense::zeros(rows, total);
                let mut at = 0;
                for m in &fms {
                    let dm = m.to_dense(ctx);
                    for r in 0..rows {
                        for c in 0..dm.cols() {
                            d.set(r, at + c, dm.at(r, c));
                        }
                    }
                    at += dm.cols();
                }
                return Ok(Value::Matrix(FM::from_dense(d)));
            }
            let refs: Vec<&FM> = fms.iter().collect();
            Ok(Value::Matrix(FM::cbind(&refs)))
        }
        "rbind" => {
            let fms: Vec<FM> = a
                .positional
                .iter()
                .map(|v| fm_of(interp, v))
                .collect::<Result<_, _>>()?;
            let mut acc = fms[0].clone();
            for m in &fms[1..] {
                acc = FM::rbind(ctx, &acc, m);
            }
            Ok(Value::Matrix(acc))
        }
        "diag" => match a.pos(0, "diag")? {
            Value::Num(n) => Ok(Value::Matrix(FM::from_dense(Dense::eye(*n as usize)))),
            Value::Vec(v) => {
                let n = v.len();
                let mut d = Dense::zeros(n, n);
                for (i, &x) in v.iter().enumerate() {
                    d.set(i, i, x);
                }
                Ok(Value::Matrix(FM::from_dense(d)))
            }
            Value::Matrix(m) => {
                let d = interp.force_fm(m).to_dense(ctx);
                let n = d.rows().min(d.cols());
                Ok(Value::Vec(Rc::new((0..n).map(|i| d.at(i, i)).collect())))
            }
            other => Err(RError::Eval(format!("bad diag argument {other:?}"))),
        },
        "runif.matrix" => {
            let n = a.pos(0, "runif.matrix")?.as_num()? as u64;
            let p = a.pos(1, "runif.matrix")?.as_num()? as usize;
            let lo = a.get("min", 2).map(|v| v.as_num()).transpose()?.unwrap_or(0.0);
            let hi = a.get("max", 3).map(|v| v.as_num()).transpose()?.unwrap_or(1.0);
            let seed = a
                .named("seed")
                .map(|v| v.as_num())
                .transpose()?
                .map(|v| v as u64)
                .unwrap_or_else(|| interp.next_seed());
            Ok(Value::Matrix(FM::runif(ctx, n, p, lo, hi, seed)))
        }
        "rnorm.matrix" => {
            let n = a.pos(0, "rnorm.matrix")?.as_num()? as u64;
            let p = a.pos(1, "rnorm.matrix")?.as_num()? as usize;
            let mean = a.get("mean", 2).map(|v| v.as_num()).transpose()?.unwrap_or(0.0);
            let sd = a.get("sd", 3).map(|v| v.as_num()).transpose()?.unwrap_or(1.0);
            let seed = a
                .named("seed")
                .map(|v| v.as_num())
                .transpose()?
                .map(|v| v as u64)
                .unwrap_or_else(|| interp.next_seed());
            Ok(Value::Matrix(FM::rnorm(ctx, n, p, mean, sd, seed)))
        }

        // ------------------------------------------------- element-wise
        "exp" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Exp, f64::exp),
        "log" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Ln, f64::ln),
        "log2" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Log2, f64::log2),
        "log10" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Log10, f64::log10),
        "log1p" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Log1p, f64::ln_1p),
        "sqrt" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Sqrt, f64::sqrt),
        "abs" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Abs, f64::abs),
        "floor" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Floor, f64::floor),
        "ceiling" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Ceil, f64::ceil),
        "round" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Round, f64::round),
        "sign" => unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Sign, f64::signum),
        "sigmoid" => {
            unary_elementwise(interp, a.pos(0, name)?, UnaryOp::Sigmoid, |x| 1.0 / (1.0 + (-x).exp()))
        }
        "pmin" | "pmax" => {
            let op = if name == "pmin" { BinaryOp::Min } else { BinaryOp::Max };
            let l = a.pos(0, name)?;
            let r = a.pos(1, name)?;
            match (l, r) {
                (Value::Matrix(m), other) | (other, Value::Matrix(m)) => {
                    let m = interp.force_fm(m);
                    match other {
                        Value::Num(x) => Ok(Value::Matrix(m.binary_scalar(op, *x, false))),
                        Value::Matrix(o) => {
                            Ok(Value::Matrix(m.binary(op, &interp.force_fm(o), false)))
                        }
                        Value::Vec(v) if v.len() == 1 => {
                            Ok(Value::Matrix(m.binary_scalar(op, v[0], false)))
                        }
                        other => Err(RError::Eval(format!("bad {name} operand {other:?}"))),
                    }
                }
                _ => {
                    let lv = small_vec_of(interp, l)?;
                    let rv = small_vec_of(interp, r)?;
                    let n = lv.len().max(rv.len());
                    let out: Vec<f64> = (0..n)
                        .map(|i| {
                            let x = lv[i % lv.len()];
                            let y = rv[i % rv.len()];
                            if name == "pmin" {
                                x.min(y)
                            } else {
                                x.max(y)
                            }
                        })
                        .collect();
                    Ok(Value::Vec(Rc::new(out)))
                }
            }
        }

        // -------------------------------------------------- aggregation
        "sum" => {
            // R sums all arguments together.
            if a.positional.len() == 1 {
                agg_value(interp, a.pos(0, "sum")?, AggOp::Sum, "sum")
            } else {
                let mut total = 0.0;
                for v in &a.positional {
                    let s = agg_value(interp, v, AggOp::Sum, "sum")?;
                    total += match s {
                        Value::Num(x) => x,
                        Value::Matrix(m) => m.value(ctx),
                        _ => 0.0,
                    };
                }
                Ok(Value::Num(total))
            }
        }
        "mean" => agg_value(interp, a.pos(0, "mean")?, AggOp::Mean, "mean"),
        "min" => agg_value(interp, a.pos(0, "min")?, AggOp::Min, "min"),
        "max" => agg_value(interp, a.pos(0, "max")?, AggOp::Max, "max"),
        "any" => agg_value(interp, a.pos(0, "any")?, AggOp::Any, "any"),
        "all" => agg_value(interp, a.pos(0, "all")?, AggOp::All, "all"),
        "rowSums" | "rowMeans" | "colSums" | "colMeans" => {
            let m = fm_of(interp, a.pos(0, name)?)?;
            let out = match name {
                "rowSums" => m.row_sums(),
                "rowMeans" => m.row_means(),
                "colSums" => m.col_sums(),
                _ => m.col_means(),
            };
            Ok(Value::Matrix(out))
        }
        "crossprod" => {
            let x = fm_of(interp, a.pos(0, "crossprod")?)?;
            match a.positional.get(1) {
                None => Ok(Value::Matrix(x.crossprod())),
                Some(yv) => {
                    let y = fm_of(interp, yv)?;
                    Ok(Value::Matrix(x.crossprod_with(&y)))
                }
            }
        }

        // ------------------------------------------------------- GenOps
        "inner.prod" => {
            let x = fm_of(interp, a.pos(0, "inner.prod")?)?;
            let b = interp.force_fm(a.pos(1, "inner.prod")?.as_matrix()?).to_dense(ctx);
            let f1 = binop_of(a.pos(2, "inner.prod")?.as_str()?)?;
            let f2 = binop_of(a.pos(3, "inner.prod")?.as_str()?)?;
            if x.is_small() {
                // Small-world generalized product.
                let xd = x.to_dense(ctx);
                let mut out = Dense::zeros(xd.rows(), b.cols());
                for i in 0..xd.rows() {
                    for j in 0..b.cols() {
                        let mut acc = None;
                        for k in 0..xd.cols() {
                            let e = apply_binop(f1, xd.at(i, k), b.at(k, j));
                            acc = Some(match acc {
                                None => e,
                                Some(prev) => apply_binop(f2, prev, e),
                            });
                        }
                        out.set(i, j, acc.unwrap_or(0.0));
                    }
                }
                Ok(Value::Matrix(FM::from_dense(out)))
            } else {
                Ok(Value::Matrix(x.inner_prod(b, f1, f2)))
            }
        }
        "agg.row" => {
            let m = fm_of(interp, a.pos(0, "agg.row")?)?;
            let f = a.pos(1, "agg.row")?.as_str()?;
            let out = match f {
                // R's which.min is 1-based.
                "which.min" => &m.row_which_min() + 1.0,
                "which.max" => &m.row_which_max() + 1.0,
                "+" => m.row_sums(),
                "min" => m.row_min(),
                "max" => m.row_max(),
                other => return Err(RError::Eval(format!("unknown agg function '{other}'"))),
            };
            Ok(Value::Matrix(out))
        }
        "groupby.row" => {
            let data = fm_of(interp, a.pos(0, "groupby.row")?)?;
            let labels = fm_of(interp, a.pos(1, "groupby.row")?)?;
            let f = a.pos(2, "groupby.row")?.as_str()?;
            let op = match f {
                "+" => AggOp::Sum,
                "count" => AggOp::Count,
                "min" => AggOp::Min,
                "max" => AggOp::Max,
                "mean" => AggOp::Mean,
                other => return Err(RError::Eval(format!("unknown group function '{other}'"))),
            };
            // Output size depends on the label values (paper §3.4):
            // materialize the labels (cheap n×1; reuses set.cache) and
            // find the label range in one fused pass.
            let labels = labels.materialize(ctx);
            let lo_hi = FM::materialize_multi(ctx, &[&labels.min_all(), &labels.max_all()]);
            let lo = lo_hi[0].value(ctx);
            let hi = lo_hi[1].value(ctx);
            let ngroups = (hi - lo) as usize + 1;
            let shifted = labels
                .binary_scalar(BinaryOp::Sub, lo, false)
                .cast(flashr_core::DType::I64);
            let out = data.groupby_row(&shifted, op, ngroups).materialize(ctx);
            Ok(Value::Matrix(out))
        }
        "agg.col" => {
            let m = fm_of(interp, a.pos(0, "agg.col")?)?;
            let f = a.pos(1, "agg.col")?.as_str()?;
            let out = match f {
                "+" => m.col_sums(),
                "min" => m.col_min(),
                "max" => m.col_max(),
                "mean" => m.col_means(),
                other => return Err(RError::Eval(format!("unknown agg function '{other}'"))),
            };
            Ok(Value::Matrix(out))
        }
        "groupby.col" => {
            let data = fm_of(interp, a.pos(0, "groupby.col")?)?;
            let labels = small_vec_of(interp, a.pos(1, "groupby.col")?)?;
            let f = a.pos(2, "groupby.col")?.as_str()?;
            let op = match f {
                "+" => AggOp::Sum,
                "count" => AggOp::Count,
                "min" => AggOp::Min,
                "max" => AggOp::Max,
                "mean" => AggOp::Mean,
                other => return Err(RError::Eval(format!("unknown group function '{other}'"))),
            };
            // R labels are 1-based; shift to dense 0-based groups.
            let lo = labels.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = labels.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if !lo.is_finite() || !hi.is_finite() {
                return Err(RError::Eval("bad column labels".into()));
            }
            let ngroups = (hi - lo) as usize + 1;
            let idx: Vec<usize> = labels.iter().map(|&v| (v - lo) as usize).collect();
            Ok(Value::Matrix(data.groupby_col(&idx, op, ngroups)))
        }
        "sweep" => {
            let x = fm_of(interp, a.pos(0, "sweep")?)?;
            let margin = a.pos(1, "sweep")?.as_num()? as usize;
            let stats = small_vec_of(interp, a.pos(2, "sweep")?)?;
            let f = a.get("FUN", 3).map(|v| v.as_str().map(|s| s.to_string())).transpose()?;
            let op = binop_of(f.as_deref().unwrap_or("-"))?;
            match margin {
                2 => {
                    if x.is_small() {
                        let d = x.to_dense(ctx);
                        let out = Dense::from_fn(d.rows(), d.cols(), |r, c| {
                            apply_binop(op, d.at(r, c), stats[c % stats.len()])
                        });
                        Ok(Value::Matrix(FM::from_dense(out)))
                    } else {
                        Ok(Value::Matrix(x.sweep_cols(&stats, op)))
                    }
                }
                1 => {
                    if x.is_small() {
                        let d = x.to_dense(ctx);
                        let out = Dense::from_fn(d.rows(), d.cols(), |r, c| {
                            apply_binop(op, d.at(r, c), stats[r % stats.len()])
                        });
                        Ok(Value::Matrix(FM::from_dense(out)))
                    } else {
                        // Per-row stats as a broadcast column.
                        let col = interp.vec_to_fm(&stats);
                        Ok(Value::Matrix(x.binary(op, &col, false)))
                    }
                }
                other => Err(RError::Eval(format!("sweep margin must be 1 or 2, got {other}"))),
            }
        }

        // ----------------------------------------------- engine control
        "set.cache" => {
            let m = a.pos(0, "set.cache")?.as_matrix()?;
            let flag = interp.truthy(a.pos(1, "set.cache")?)?;
            m.set_cache(flag);
            Ok(Value::Matrix(m.clone()))
        }
        "materialize" => {
            let m = a.pos(0, "materialize")?.as_matrix()?;
            Ok(Value::Matrix(m.materialize(ctx)))
        }
        "as.vector" => match a.pos(0, "as.vector")? {
            Value::Matrix(m) => {
                let f = interp.force_fm(m);
                if f.len() == 1 {
                    Ok(Value::Num(f.get(ctx, 0, 0)))
                } else {
                    Ok(Value::Vec(Rc::new(small_vec_of(interp, &Value::Matrix(f))?)))
                }
            }
            other => Ok(other.clone()),
        },
        "as.matrix" => {
            let m = fm_of(interp, a.pos(0, "as.matrix")?)?;
            if m.len() > 4_000_000 {
                return Err(RError::Eval("matrix too large for as.matrix".into()));
            }
            Ok(Value::Matrix(FM::from_dense(m.to_dense(ctx))))
        }
        "unique" => {
            let m = fm_of(interp, a.pos(0, "unique")?)?;
            Ok(Value::Vec(Rc::new(m.unique(ctx))))
        }

        // --------------------------------------------------------- misc
        "is.null" => Ok(Value::Bool(a.pos(0, "is.null")?.is_null())),
        "print" => {
            let v = a.pos(0, "print")?.clone();
            match &v {
                Value::Matrix(m) => println!("{:?}", interp.force_fm(m)),
                other => println!("{other:?}"),
            }
            Ok(v)
        }
        "cat" => {
            let mut out = String::new();
            for v in &a.positional {
                match v {
                    Value::Str(s) => out.push_str(s),
                    Value::Num(x) => out.push_str(&x.to_string()),
                    Value::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
                    Value::Vec(xs) => {
                        out.push_str(
                            &xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" "),
                        );
                    }
                    Value::Matrix(m) => {
                        let f = interp.force_fm(m);
                        if f.len() == 1 {
                            out.push_str(&f.get(ctx, 0, 0).to_string());
                        } else {
                            out.push_str(&format!("{f:?}"));
                        }
                    }
                    other => out.push_str(&format!("{other:?}")),
                }
                out.push(' ');
            }
            print!("{}", out.trim_end_matches(' '));
            Ok(Value::Null)
        }
        "solve" => {
            let m = interp.force_fm(a.pos(0, "solve")?.as_matrix()?).to_dense(ctx);
            let factors = flashr_linalg::lu_factor(&m)
                .ok_or_else(|| RError::Eval("matrix is singular".into()))?;
            let rhs = match a.positional.get(1) {
                Some(v) => interp.force_fm(v.as_matrix()?).to_dense(ctx),
                None => Dense::eye(m.rows()),
            };
            Ok(Value::Matrix(FM::from_dense(flashr_linalg::lu_solve(&factors, &rhs))))
        }
        "which.min" | "which.max" => {
            let xs = small_vec_of(interp, a.pos(0, name)?)?;
            let mut best = 0usize;
            for (i, &x) in xs.iter().enumerate() {
                let better = if name == "which.min" { x < xs[best] } else { x > xs[best] };
                if better {
                    best = i;
                }
            }
            Ok(Value::Num(best as f64 + 1.0))
        }
        "stopifnot" => {
            for (i, v) in a.positional.iter().enumerate() {
                if !interp.truthy(v)? {
                    return Err(RError::Eval(format!("stopifnot: condition {} failed", i + 1)));
                }
            }
            Ok(Value::Null)
        }
        other => Err(RError::Eval(format!("builtin '{other}' is not implemented"))),
    }
}

fn apply_binop(op: BinaryOp, a: f64, b: f64) -> f64 {
    match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => a / b,
        BinaryOp::Min => a.min(b),
        BinaryOp::Max => a.max(b),
        BinaryOp::EuclidSq => (a - b) * (a - b),
        _ => f64::NAN,
    }
}
