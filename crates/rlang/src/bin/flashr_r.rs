//! `flashr-r` — run R scripts (or a tiny REPL) on the FlashR engine.
//!
//! ```sh
//! cargo run --release -p flashr-rlang --bin flashr-r -- script.R
//! cargo run --release -p flashr-rlang --bin flashr-r -- --ssd /mnt/a script.R
//! cargo run --release -p flashr-rlang --bin flashr-r            # REPL
//! ```

use flashr_core::session::FlashCtx;
use flashr_rlang::{Interp, Value};
use std::io::{BufRead, Write};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--ssd DIR` runs scripts out-of-core against an emulated array
    // under DIR (matrices created by `materialize` land on the SSDs).
    let ctx = match args.iter().position(|a| a == "--ssd") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--ssd requires a directory");
                std::process::exit(2);
            }
            let dir = args.remove(i + 1);
            args.remove(i);
            FlashCtx::on_ssds(flashr_safs::SafsConfig::striped_under(dir, 4))
                .expect("cannot open the SSD array")
        }
        None => FlashCtx::in_memory(),
    };
    let mut interp = Interp::new(ctx);

    if let Some(path) = args.first() {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match interp.eval_str(&src) {
            Ok(v) => {
                if !matches!(v, Value::Null) {
                    println!("{v:?}");
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("FlashR R interpreter — matrices execute lazily on the FlashR engine.");
    println!("Type R expressions; 'q()' or Ctrl-D quits.\n");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "q()" || trimmed == "quit()" {
            break;
        }
        match interp.eval_str(trimmed) {
            Ok(Value::Null) => {}
            Ok(v) => println!("{v:?}"),
            Err(e) => eprintln!("{e}"),
        }
    }
}
