//! Recursive-descent parser with R's operator precedence.

use crate::ast::{Arg, BinOp, Expr, UnOp};
use crate::token::{lex, Tok};
use crate::value::RError;

/// Parse a whole program into a sequence of expressions.
pub fn parse_program(src: &str) -> Result<Vec<Expr>, RError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    p.skip_separators();
    while !p.at(&Tok::Eof) {
        out.push(p.expr()?);
        p.expect_separator()?;
        p.skip_separators();
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if !matches!(t, Tok::Eof) {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), RError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(RError::Syntax(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn skip_separators(&mut self) {
        while matches!(self.peek(), Tok::Newline | Tok::Semi) {
            self.bump();
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Tok::Newline) {
            self.bump();
        }
    }

    fn expect_separator(&mut self) -> Result<(), RError> {
        match self.peek() {
            Tok::Newline | Tok::Semi => {
                self.bump();
                Ok(())
            }
            Tok::Eof | Tok::RBrace => Ok(()),
            other => Err(RError::Syntax(format!("expected end of statement, found {other:?}"))),
        }
    }

    /// Full expression: assignment is lowest (right-associative).
    fn expr(&mut self) -> Result<Expr, RError> {
        let lhs = self.or_expr()?;
        if self.eat(&Tok::Assign) || (self.assignable(&lhs) && self.eat(&Tok::Eq)) {
            self.skip_newlines();
            let rhs = self.expr()?;
            return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn assignable(&self, e: &Expr) -> bool {
        matches!(e, Expr::Ident(_) | Expr::Index { .. })
    }

    fn or_expr(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Tok::Or | Tok::Or2) {
            self.bump();
            self.skip_newlines();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.not_expr()?;
        while matches!(self.peek(), Tok::And | Tok::And2) {
            self.bump();
            self.skip_newlines();
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, RError> {
        if self.eat(&Tok::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, RError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Lt => BinOp::Lt,
            Tok::Gt => BinOp::Gt,
            Tok::Le => BinOp::Le,
            Tok::Ge => BinOp::Ge,
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        self.skip_newlines();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.special_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.special_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// `%*%` and `%%` bind tighter than `*`.
    fn special_expr(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.range_expr()?;
        loop {
            let op = match self.peek() {
                Tok::MatMul => BinOp::MatMul,
                Tok::Modulo => BinOp::Mod,
                _ => break,
            };
            self.bump();
            self.skip_newlines();
            let rhs = self.range_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn range_expr(&mut self) -> Result<Expr, RError> {
        let mut lhs = self.unary_expr()?;
        while self.eat(&Tok::Colon) {
            self.skip_newlines();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(BinOp::Range, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, RError> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        if self.eat(&Tok::Plus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Plus, Box::new(inner)));
        }
        self.pow_expr()
    }

    /// `^` is right-associative and binds tighter than unary minus on the
    /// right operand (R: `-2^2 == -4`).
    fn pow_expr(&mut self) -> Result<Expr, RError> {
        let base = self.postfix_expr()?;
        if self.eat(&Tok::Caret) {
            self.skip_newlines();
            let exp = self.unary_expr()?;
            return Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    /// Calls `f(...)` and indexing `x[...]`, left-associative chains.
    fn postfix_expr(&mut self) -> Result<Expr, RError> {
        let mut e = self.primary()?;
        loop {
            if self.at(&Tok::LParen) {
                self.bump();
                let args = self.arg_list(&Tok::RParen, false)?;
                self.expect(&Tok::RParen)?;
                e = Expr::Call { callee: Box::new(e), args };
            } else if self.at(&Tok::LBracket) {
                self.bump();
                let args = self.arg_list(&Tok::RBracket, true)?;
                self.expect(&Tok::RBracket)?;
                e = Expr::Index { object: Box::new(e), args };
            } else {
                break;
            }
        }
        Ok(e)
    }

    /// Comma-separated arguments; `allow_empty` permits `x[, 2]` slots.
    fn arg_list(&mut self, end: &Tok, allow_empty: bool) -> Result<Vec<Arg>, RError> {
        let mut args = Vec::new();
        self.skip_newlines();
        if self.at(end) {
            return Ok(args);
        }
        loop {
            self.skip_newlines();
            if allow_empty && (self.at(&Tok::Comma) || self.at(end)) {
                args.push(Arg { name: None, value: None });
            } else {
                // Named argument? ident '=' (but not '==').
                let name = if let Tok::Ident(id) = self.peek().clone() {
                    if self.toks.get(self.pos + 1) == Some(&Tok::Eq) {
                        self.bump();
                        self.bump();
                        Some(id)
                    } else {
                        None
                    }
                } else {
                    None
                };
                let value = self.expr()?;
                args.push(Arg { name, value: Some(value) });
            }
            self.skip_newlines();
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr, RError> {
        match self.bump() {
            Tok::Num(v) => Ok(Expr::Num(v)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::Null => Ok(Expr::Null),
            Tok::Ident(id) => Ok(Expr::Ident(id)),
            Tok::LParen => {
                self.skip_newlines();
                let e = self.expr()?;
                self.skip_newlines();
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::LBrace => {
                let mut body = Vec::new();
                self.skip_separators();
                while !self.at(&Tok::RBrace) {
                    body.push(self.expr()?);
                    if !self.at(&Tok::RBrace) {
                        self.expect_separator()?;
                        self.skip_separators();
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(Expr::Block(body))
            }
            Tok::Function => {
                self.expect(&Tok::LParen)?;
                let mut params = Vec::new();
                self.skip_newlines();
                if !self.at(&Tok::RParen) {
                    loop {
                        self.skip_newlines();
                        let name = match self.bump() {
                            Tok::Ident(id) => id,
                            other => {
                                return Err(RError::Syntax(format!(
                                    "expected parameter name, found {other:?}"
                                )))
                            }
                        };
                        let default = if self.eat(&Tok::Eq) {
                            Some(self.expr()?)
                        } else {
                            None
                        };
                        params.push((name, default));
                        self.skip_newlines();
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                self.skip_newlines();
                let body = self.expr()?;
                Ok(Expr::Function { params, body: Box::new(body) })
            }
            Tok::If => {
                self.expect(&Tok::LParen)?;
                self.skip_newlines();
                let cond = self.expr()?;
                self.skip_newlines();
                self.expect(&Tok::RParen)?;
                self.skip_newlines();
                let then = self.expr()?;
                // `else` may sit after a newline when `then` was a block.
                let checkpoint = self.pos;
                self.skip_separators();
                let alt = if self.eat(&Tok::Else) {
                    self.skip_newlines();
                    Some(Box::new(self.expr()?))
                } else {
                    self.pos = checkpoint;
                    None
                };
                Ok(Expr::If { cond: Box::new(cond), then: Box::new(then), alt })
            }
            Tok::For => {
                self.expect(&Tok::LParen)?;
                let var = match self.bump() {
                    Tok::Ident(id) => id,
                    other => {
                        return Err(RError::Syntax(format!("expected loop variable, found {other:?}")))
                    }
                };
                self.expect(&Tok::In)?;
                self.skip_newlines();
                let seq = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.skip_newlines();
                let body = self.expr()?;
                Ok(Expr::For { var, seq: Box::new(seq), body: Box::new(body) })
            }
            Tok::While => {
                self.expect(&Tok::LParen)?;
                self.skip_newlines();
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.skip_newlines();
                let body = self.expr()?;
                Ok(Expr::While { cond: Box::new(cond), body: Box::new(body) })
            }
            Tok::Break => Ok(Expr::Break),
            Tok::Next => Ok(Expr::Next),
            Tok::Return => {
                if self.eat(&Tok::LParen) {
                    if self.eat(&Tok::RParen) {
                        Ok(Expr::Return(None))
                    } else {
                        let e = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        Ok(Expr::Return(Some(Box::new(e))))
                    }
                } else {
                    Ok(Expr::Return(None))
                }
            }
            other => Err(RError::Syntax(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Expr {
        let mut prog = parse_program(src).unwrap();
        assert_eq!(prog.len(), 1, "expected one statement in {src:?}");
        prog.pop().unwrap()
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = one("1 + 2 * 3");
        match e {
            Expr::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Binary(BinOp::Mul, _, _)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn matmul_binds_tighter_than_divide() {
        // t(X) %*% y / n   parses as   (t(X) %*% y) / n
        let e = one("t(X) %*% y / n");
        assert!(matches!(e, Expr::Binary(BinOp::Div, _, _)));
    }

    #[test]
    fn unary_minus_with_pow() {
        // R: -2^2 == -(2^2)
        let e = one("-2^2");
        match e {
            Expr::Unary(UnOp::Neg, inner) => {
                assert!(matches!(*inner, Expr::Binary(BinOp::Pow, _, _)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn assignment_chains_right() {
        let e = one("a <- b <- 3");
        match e {
            Expr::Assign(_, rhs) => assert!(matches!(*rhs, Expr::Assign(_, _))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn function_definition_and_call() {
        let e = one("f <- function(x, y = 2) x + y");
        match e {
            Expr::Assign(_, rhs) => match *rhs {
                Expr::Function { params, .. } => {
                    assert_eq!(params.len(), 2);
                    assert!(params[1].1.is_some());
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        let call = one("f(1, y = 3)");
        match call {
            Expr::Call { args, .. } => {
                assert_eq!(args[1].name.as_deref(), Some("y"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_index_slots() {
        let e = one("X[, 2]");
        match e {
            Expr::Index { args, .. } => {
                assert!(args[0].value.is_none());
                assert!(args[1].value.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn if_else_across_newlines() {
        let prog = parse_program("if (x > 0) {\n  1\n} else {\n  2\n}\n").unwrap();
        assert_eq!(prog.len(), 1);
        assert!(matches!(prog[0], Expr::If { alt: Some(_), .. }));
    }

    #[test]
    fn if_without_else_does_not_eat_next_statement() {
        let prog = parse_program("if (x) y <- 1\nz <- 2").unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn for_and_while() {
        let e = one("for (i in 1:max.iters) { s <- s + i }");
        assert!(matches!(e, Expr::For { .. }));
        let e = one("while (num.moves > 0) num.moves <- num.moves - 1");
        assert!(matches!(e, Expr::While { .. }));
    }

    #[test]
    fn paper_figure2_parses() {
        let src = r#"
logistic.regression <- function(X, y) {
  grad <- function(X, y, w)
    (t(X) %*% (1/(1+exp(-X%*%t(w)))-y))/length(y)
  cost <- function(X, y, w)
    sum(y*(-X%*%t(w))+log(1+exp(X%*%t(w))))/length(y)
  theta <- matrix(rep(0, num.features), nrow=1)
  for (i in 1:max.iters) {
    g <- grad(X, y, theta)
    l <- cost(X, y, theta)
    eta <- 1
    delta <- 0.5 * (-g) %*% t(g)
    l2 <- as.vector(cost(X, y, theta+eta*(-g)))
    while (l2 < as.vector(l)+delta*eta)
      eta <- eta * 0.2
    theta <- theta + (-g) * eta
  }
}
"#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.len(), 1);
    }

    #[test]
    fn paper_figure3_parses() {
        let src = r#"
kmeans <- function(X, C) {
  I <- NULL
  num.moves <- nrow(X)
  while (num.moves > 0) {
    D <- inner.prod(X, t(C), "euclidean", "+")
    old.I <- I
    I <- agg.row(D, "which.min")
    I <- set.cache(I, TRUE)
    CNT <- groupby.row(rep.int(1, nrow(I)), I, "+")
    C <- sweep(groupby.row(X, I, "+"), 1, CNT, "/")
    if (!is.null(old.I))
      num.moves <- as.vector(sum(old.I != I))
  }
  C
}
"#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.len(), 1);
    }
}
