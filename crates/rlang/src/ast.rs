//! Abstract syntax of the R subset.

/// Binary operators (R precedence is encoded in the parser).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Mod,
    MatMul,
    Range, // a:b
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Plus,
    Not,
}

/// One argument at a call site, possibly named (`nrow = 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    pub name: Option<String>,
    /// `None` encodes an empty index slot, as in `x[, 2]`.
    pub value: Option<Expr>,
}

/// Expressions (R is expression-oriented; statements are expressions).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Ident(String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `target <- value` (target is an ident or an index expression).
    Assign(Box<Expr>, Box<Expr>),
    Call { callee: Box<Expr>, args: Vec<Arg> },
    Index { object: Box<Expr>, args: Vec<Arg> },
    Function { params: Vec<(String, Option<Expr>)>, body: Box<Expr> },
    If { cond: Box<Expr>, then: Box<Expr>, alt: Option<Box<Expr>> },
    For { var: String, seq: Box<Expr>, body: Box<Expr> },
    While { cond: Box<Expr>, body: Box<Expr> },
    Block(Vec<Expr>),
    Break,
    Next,
    Return(Option<Box<Expr>>),
}
