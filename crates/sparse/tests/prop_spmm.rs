//! Property tests: CSR invariants and SpMM correctness (in-memory and
//! semi-external) against a dense oracle, over random sparse structures.

use flashr_linalg::{matmul, Dense};
use flashr_safs::{Safs, SafsConfig};
use flashr_sparse::{spmm, CsrMatrix, SemCsr};
use proptest::prelude::*;

fn arb_triplets(max_n: usize) -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1..=max_n, 1..=max_n).prop_flat_map(|(r, c)| {
        let trip = (0..r, 0..c, -5.0f64..5.0);
        proptest::collection::vec(trip, 0..60).prop_map(move |t| (r, c, t))
    })
}

fn safs(tag: u64) -> Safs {
    let dir = std::env::temp_dir().join(format!("sparse-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Safs::open(SafsConfig::striped_under(dir, 2)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn csr_roundtrips_triplets((r, c, trips) in arb_triplets(40)) {
        let m = CsrMatrix::from_triplets(r, c, &trips);
        // Dense oracle built independently.
        let mut d = Dense::zeros(r, c);
        for &(i, j, v) in &trips {
            d.set(i, j, d.at(i, j) + v);
        }
        prop_assert!(m.to_dense().max_abs_diff(&d) < 1e-12);
        // nnz never exceeds the triplet count.
        prop_assert!(m.nnz() <= trips.len());
        // indptr is monotone and consistent.
        prop_assert_eq!(m.degrees().iter().sum::<usize>(), m.nnz());
    }

    #[test]
    fn transpose_is_involution((r, c, trips) in arb_triplets(30)) {
        let m = CsrMatrix::from_triplets(r, c, &trips);
        let tt = m.transpose().transpose();
        prop_assert!(m.to_dense().max_abs_diff(&tt.to_dense()) < 1e-12);
    }

    #[test]
    fn spmm_matches_dense((r, c, trips) in arb_triplets(30), k in 1usize..5) {
        let a = CsrMatrix::from_triplets(r, c, &trips);
        let b = Dense::from_fn(c, k, |i, j| ((i * 3 + j) % 5) as f64 - 2.0);
        let got = spmm(&a, &b);
        let want = matmul(&a.to_dense(), &b);
        prop_assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn sem_roundtrip_and_spmm(
        (r, c, trips) in arb_triplets(30),
        rows_per_part in 1usize..20,
        seed in 0u64..u64::MAX,
    ) {
        let a = CsrMatrix::from_triplets(r, c, &trips);
        let rt = safs(seed);
        let sem = SemCsr::store(&rt, "p", &a, rows_per_part);
        prop_assert_eq!(sem.nnz(), a.nnz() as u64);
        prop_assert!(sem.to_csr().to_dense().max_abs_diff(&a.to_dense()) < 1e-12);
        let b = Dense::from_fn(c, 2, |i, j| (i + j) as f64 * 0.5 - 1.0);
        prop_assert!(sem.spmm(&b).max_abs_diff(&spmm(&a, &b)) < 1e-10);
    }
}
