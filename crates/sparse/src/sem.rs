//! Semi-external-memory SpMM (paper §3, integrating Zheng et al.
//! TPDS'16): the sparse matrix lives on the SSD array in row-block
//! partitions; multiplication streams the blocks while the skinny dense
//! operand stays in memory.
//!
//! On-disk partition layout (8-byte aligned sections):
//!
//! ```text
//! [nnz: u64][indptr: (rows+1) × u64, block-relative][indices: nnz × u32, padded][values: nnz × f64]
//! ```
//!
//! Every partition is padded to the size of the largest one so the SAFS
//! fixed-partition contract holds (sparse blocks are variable-sized; the
//! paper's SEM format solves this the same way, with page-granular
//! blocks).

use crate::csr::CsrMatrix;
use flashr_linalg::Dense;
use flashr_safs::{IoBuf, Safs, SafsFile};
use rayon::prelude::*;

/// A CSR matrix stored on the SSD array in row-block partitions.
pub struct SemCsr {
    file: SafsFile,
    nrows: usize,
    ncols: usize,
    rows_per_part: usize,
    nnz: u64,
}

fn part_payload_bytes(rows: usize, nnz: usize) -> usize {
    let indices_padded = (nnz * 4).div_ceil(8) * 8;
    8 + (rows + 1) * 8 + indices_padded + nnz * 8
}

impl SemCsr {
    /// Serialize `m` onto the array under `name`.
    pub fn store(safs: &Safs, name: &str, m: &CsrMatrix, rows_per_part: usize) -> SemCsr {
        assert!(rows_per_part >= 1);
        let nrows = m.nrows();
        let nparts = nrows.div_ceil(rows_per_part).max(1);
        let (indptr, _, _) = m.raw();

        // Fixed partition size = the largest serialized block.
        let mut part_bytes = 0usize;
        for p in 0..nparts {
            let r0 = p * rows_per_part;
            let r1 = (r0 + rows_per_part).min(nrows);
            let nnz = (indptr[r1] - indptr[r0]) as usize;
            part_bytes = part_bytes.max(part_payload_bytes(r1 - r0, nnz));
        }

        let file = safs
            .create(name, part_bytes as u64, nparts as u64)
            .expect("SEM matrix create failed");
        file.set_delete_on_drop(true);

        let mut writes = Vec::new();
        for p in 0..nparts {
            let r0 = p * rows_per_part;
            let r1 = (r0 + rows_per_part).min(nrows);
            let base = indptr[r0];
            let nnz = (indptr[r1] - base) as usize;
            let mut buf = IoBuf::zeroed(part_bytes);
            {
                let bytes = buf.as_mut_bytes();
                bytes[..8].copy_from_slice(&(nnz as u64).to_le_bytes());
                let mut off = 8;
                for &entry in &indptr[r0..=r1] {
                    bytes[off..off + 8].copy_from_slice(&(entry - base).to_le_bytes());
                    off += 8;
                }
                let (_, all_indices, all_values) = m.raw();
                let s = base as usize;
                for &c in &all_indices[s..s + nnz] {
                    bytes[off..off + 4].copy_from_slice(&c.to_le_bytes());
                    off += 4;
                }
                off = off.div_ceil(8) * 8;
                for &v in &all_values[s..s + nnz] {
                    bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
                    off += 8;
                }
            }
            writes.push(file.write_part_async(p as u64, buf).expect("SEM write submit failed"));
        }
        for w in writes {
            w.wait().expect("SEM write failed");
        }
        SemCsr { file, nrows, ncols: m.ncols(), rows_per_part, nnz: m.nnz() as u64 }
    }

    /// Rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// Number of row-block partitions.
    pub fn nparts(&self) -> usize {
        self.nrows.div_ceil(self.rows_per_part).max(1)
    }

    fn decode(&self, p: usize, buf: &IoBuf) -> (Vec<u64>, Vec<u32>, Vec<f64>) {
        let r0 = p * self.rows_per_part;
        let r1 = (r0 + self.rows_per_part).min(self.nrows);
        let rows = r1 - r0;
        let bytes = buf.as_bytes();
        let nnz = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut off = 8;
        for _ in 0..=rows {
            indptr.push(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
            off += 8;
        }
        let mut indices = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            indices.push(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()));
            off += 4;
        }
        off = off.div_ceil(8) * 8;
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            values.push(f64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
            off += 8;
        }
        (indptr, indices, values)
    }

    /// Semi-external `C = A · B`: row blocks stream from the array (the
    /// per-disk I/O threads overlap reads across rayon workers) while `B`
    /// and `C` stay in memory.
    pub fn spmm(&self, b: &Dense) -> Dense {
        assert_eq!(self.ncols, b.rows(), "inner dimension mismatch");
        let k = b.cols();
        let mut c = Dense::zeros(self.nrows, k);
        let rows_per_part = self.rows_per_part;
        c.as_mut_slice()
            .par_chunks_mut(rows_per_part * k)
            .enumerate()
            .for_each(|(p, cchunk)| {
                let buf = self.file.read_part(p as u64).expect("SEM read failed");
                let (indptr, indices, values) = self.decode(p, &buf);
                let rows = cchunk.len() / k;
                for r in 0..rows {
                    let s = indptr[r] as usize;
                    let e = indptr[r + 1] as usize;
                    let crow = &mut cchunk[r * k..(r + 1) * k];
                    for i in s..e {
                        let v = values[i];
                        let brow = b.row(indices[i] as usize);
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += v * bv;
                        }
                    }
                }
            });
        c
    }

    /// Read the whole matrix back into memory (tests / small data).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut indptr: Vec<u64> = vec![0];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for p in 0..self.nparts() {
            let buf = self.file.read_part(p as u64).expect("SEM read failed");
            let (pip, pidx, pval) = self.decode(p, &buf);
            let base = *indptr.last().unwrap();
            for w in pip.windows(2) {
                indptr.push(base + w[1]);
            }
            indices.extend(pidx);
            values.extend(pval);
        }
        CsrMatrix::from_raw(self.nrows, self.ncols, indptr, indices, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_safs::SafsConfig;

    fn safs(tag: &str) -> Safs {
        let dir = std::env::temp_dir().join(format!("flashr-sem-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Safs::open(SafsConfig::striped_under(dir, 3)).unwrap()
    }

    #[test]
    fn roundtrip_through_the_array() {
        let safs = safs("roundtrip");
        let m = CsrMatrix::random(500, 300, 5, 11);
        let sem = SemCsr::store(&safs, "m", &m, 64);
        assert_eq!(sem.nnz(), m.nnz() as u64);
        let back = sem.to_csr();
        assert_eq!(back.to_dense().max_abs_diff(&m.to_dense()), 0.0);
    }

    #[test]
    fn sem_spmm_matches_in_memory() {
        let safs = safs("spmm");
        let m = CsrMatrix::random(400, 400, 8, 3);
        let b = Dense::from_fn(400, 8, |r, c| ((r + c) % 5) as f64 - 2.0);
        let want = crate::spmm::spmm(&m, &b);
        let sem = SemCsr::store(&safs, "g", &m, 32);
        let got = sem.spmm(&b);
        assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn single_partition_edge() {
        let safs = safs("single");
        let m = CsrMatrix::random(10, 10, 3, 1);
        let sem = SemCsr::store(&safs, "s", &m, 1000);
        assert_eq!(sem.nparts(), 1);
        let b = Dense::eye(10);
        assert!(sem.spmm(&b).max_abs_diff(&m.to_dense()) < 1e-12);
    }

    #[test]
    fn uneven_last_partition() {
        let safs = safs("uneven");
        let m = CsrMatrix::random(77, 50, 4, 9);
        let sem = SemCsr::store(&safs, "u", &m, 16); // 77 = 4×16 + 13
        assert_eq!(sem.nparts(), 5);
        let back = sem.to_csr();
        assert_eq!(back.to_dense().max_abs_diff(&m.to_dense()), 0.0);
    }
}
