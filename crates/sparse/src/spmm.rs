//! In-memory parallel sparse × dense multiplication.

use crate::csr::CsrMatrix;
use flashr_linalg::Dense;
use rayon::prelude::*;

/// `C = A · B` with sparse `A` (n×m) and dense `B` (m×k), parallel over
/// row panels of `A` (row results are disjoint, so no synchronization).
pub fn spmm(a: &CsrMatrix, b: &Dense) -> Dense {
    assert_eq!(a.ncols(), b.rows(), "inner dimension mismatch");
    let n = a.nrows();
    let k = b.cols();
    let mut c = Dense::zeros(n, k);
    c.as_mut_slice()
        .par_chunks_mut(k)
        .enumerate()
        .for_each(|(r, crow)| {
            let (cols, vals) = a.row(r);
            for (&col, &v) in cols.iter().zip(vals) {
                let brow = b.row(col as usize);
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += v * bv;
                }
            }
        });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_linalg::matmul;

    #[test]
    fn matches_dense_reference() {
        let a = CsrMatrix::random(200, 150, 6, 5);
        let b = Dense::from_fn(150, 4, |r, c| ((r * 3 + c) % 7) as f64 - 3.0);
        let got = spmm(&a, &b);
        let want = matmul(&a.to_dense(), &b);
        assert!(got.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn identity_sparse_is_noop() {
        let triplets: Vec<(usize, usize, f64)> = (0..10).map(|i| (i, i, 1.0)).collect();
        let i = CsrMatrix::from_triplets(10, 10, &triplets);
        let b = Dense::from_fn(10, 3, |r, c| (r + c) as f64);
        let c = spmm(&i, &b);
        assert_eq!(c.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn empty_rows_produce_zeros() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0)]);
        let b = Dense::filled(3, 2, 1.0);
        let c = spmm(&a, &b);
        assert_eq!(c.at(0, 0), 2.0);
        assert_eq!(c.at(1, 0), 0.0);
        assert_eq!(c.at(2, 1), 0.0);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = CsrMatrix::random(5, 5, 2, 1);
        let b = Dense::zeros(6, 2);
        let _ = spmm(&a, &b);
    }
}
