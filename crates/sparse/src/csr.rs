//! Compressed sparse row matrices.

/// A CSR matrix with `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<u64>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Build from (row, col, value) triplets; duplicate entries sum.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> CsrMatrix {
        for &(r, c, _) in triplets {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of bounds");
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let mut indptr = Vec::with_capacity(nrows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0u64);
        let mut row = 0usize;
        for (r, c, v) in sorted {
            while row < r {
                indptr.push(indices.len() as u64);
                row += 1;
            }
            if let (Some(&last_c), Some(last_v)) = (indices.last(), values.last_mut()) {
                if indptr.len() - 1 == row && last_c == c as u32 && indptr[row] < indices.len() as u64
                {
                    // Same row (current), same column → accumulate.
                    *last_v += v;
                    continue;
                }
            }
            indices.push(c as u32);
            values.push(v);
        }
        while row < nrows {
            indptr.push(indices.len() as u64);
            row += 1;
        }
        CsrMatrix { nrows, ncols, indptr, indices, values }
    }

    /// Construct directly from CSR arrays.
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        indptr: Vec<u64>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> CsrMatrix {
        assert_eq!(indptr.len(), nrows + 1);
        assert_eq!(indices.len(), values.len());
        assert_eq!(*indptr.last().unwrap() as usize, indices.len());
        for w in indptr.windows(2) {
            assert!(w[0] <= w[1], "indptr must be nondecreasing");
        }
        for &c in &indices {
            assert!((c as usize) < ncols, "column index out of range");
        }
        CsrMatrix { nrows, ncols, indptr, indices, values }
    }

    /// Rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row `r` as (column indices, values).
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let s = self.indptr[r] as usize;
        let e = self.indptr[r + 1] as usize;
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Raw CSR parts (indptr, indices, values).
    pub fn raw(&self) -> (&[u64], &[u32], &[f64]) {
        (&self.indptr, &self.indices, &self.values)
    }

    /// Entries per row.
    pub fn degrees(&self) -> Vec<usize> {
        self.indptr.windows(2).map(|w| (w[1] - w[0]) as usize).collect()
    }

    /// Transpose (CSC→CSR swap via counting sort).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0u64; self.ncols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let dst = cursor[c as usize] as usize;
                indices[dst] = r as u32;
                values[dst] = v;
                cursor[c as usize] += 1;
            }
        }
        CsrMatrix { nrows: self.ncols, ncols: self.nrows, indptr, indices, values }
    }

    /// A random sparse matrix with roughly `avg_degree` entries per row
    /// and a skewed (graph-like) degree distribution.
    pub fn random(nrows: usize, ncols: usize, avg_degree: usize, seed: u64) -> CsrMatrix {
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut indptr = Vec::with_capacity(nrows + 1);
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        indptr.push(0u64);
        for _ in 0..nrows {
            // Degree in [1, 4·avg) with a mild power-law skew.
            let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
            let deg = ((avg_degree as f64) * (0.25 + 3.75 * u * u)).ceil() as usize;
            let deg = deg.clamp(1, ncols);
            let mut cols: Vec<u32> = (0..deg).map(|_| (next() % ncols as u64) as u32).collect();
            cols.sort_unstable();
            cols.dedup();
            for c in cols {
                indices.push(c);
                values.push(1.0 + (next() % 8) as f64 * 0.25);
            }
            indptr.push(indices.len() as u64);
        }
        CsrMatrix { nrows, ncols, indptr, indices, values }
    }

    /// Dense copy (tests only).
    pub fn to_dense(&self) -> flashr_linalg::Dense {
        let mut d = flashr_linalg::Dense::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                d.set(r, c as usize, d.at(r, c as usize) + v);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_build_and_row_access() {
        let m = CsrMatrix::from_triplets(3, 4, &[(0, 1, 2.0), (2, 3, 5.0), (0, 0, 1.0)]);
        assert_eq!(m.nnz(), 3);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[1.0, 2.0]);
        let (cols, _) = m.row(1);
        assert!(cols.is_empty());
    }

    #[test]
    fn duplicate_triplets_sum() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.row(0).1, &[3.5]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::random(50, 30, 4, 7);
        let t = m.transpose();
        assert_eq!(t.nrows(), 30);
        assert_eq!(t.nnz(), m.nnz());
        let tt = t.transpose();
        assert_eq!(m.to_dense().max_abs_diff(&tt.to_dense()), 0.0);
    }

    #[test]
    fn random_has_requested_density() {
        let m = CsrMatrix::random(1000, 1000, 8, 3);
        let avg = m.nnz() as f64 / 1000.0;
        assert!(avg > 3.0 && avg < 16.0, "avg degree {avg}");
        // Rows non-empty.
        assert!(m.degrees().iter().all(|&d| d >= 1));
    }

    #[test]
    fn from_raw_validates() {
        let ok = CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]);
        assert_eq!(ok.nnz(), 2);
        let bad = std::panic::catch_unwind(|| {
            CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0])
        });
        assert!(bad.is_err());
    }

    #[test]
    fn degrees_sum_to_nnz() {
        let m = CsrMatrix::random(200, 100, 5, 1);
        assert_eq!(m.degrees().iter().sum::<usize>(), m.nnz());
    }
}
