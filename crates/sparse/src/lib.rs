//! # flashr-sparse
//!
//! Sparse-matrix support for FlashR. The paper integrates semi-external
//! memory sparse matrix multiplication (Zheng et al., TPDS'16) for large
//! sparse matrices: the sparse matrix streams from the SSD array in row
//! blocks while the (skinny) dense operand stays in memory.
//!
//! * [`CsrMatrix`] — compressed sparse row storage with construction from
//!   triplets, transpose, and a degree-skewed random generator for
//!   graph-like workloads.
//! * [`spmm()`](spmm()) — in-memory parallel `C = A · B` (sparse × tall-skinny
//!   dense).
//! * [`sem`] — the semi-external path: a CSR matrix serialized to a SAFS
//!   file in row-block partitions and multiplied while streaming.

pub mod csr;
pub mod sem;
pub mod spmm;

pub use csr::CsrMatrix;
pub use sem::SemCsr;
pub use spmm::spmm;
