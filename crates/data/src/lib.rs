//! # flashr-data
//!
//! Synthetic dataset generators reproducing the *shapes* of the FlashR
//! evaluation datasets (paper §4.2, Table 5):
//!
//! * **Criteo** (4.3 B × 40, binary click labels) → [`criteo_like`]: a
//!   logistic-model click dataset with 40 features and labels drawn from
//!   a known ground-truth weight vector — so classifier accuracy checks
//!   are meaningful, not just timing.
//! * **PageGraph-32ev** (3.5 B × 32 singular vectors) → [`pagegraph_like`]:
//!   a spectral-embedding-like Gaussian mixture with well-separated
//!   cluster structure — so k-means/GMM iterate the way they do on the
//!   paper's graph embedding.
//!
//! Both generators are lazy (counter-based RNG): the data materializes
//! partition-by-partition during the first fused pass, in memory or
//! straight to the SSD array, which is how billion-row inputs stay
//! feasible.

use flashr_core::fm::FM;
use flashr_core::ops::BinaryOp;
use flashr_core::session::FlashCtx;
use flashr_linalg::Dense;

/// A generated supervised dataset.
#[derive(Debug, Clone)]
pub struct Labeled {
    /// n×p feature matrix.
    pub x: FM,
    /// n×1 label column (0/1 for classification).
    pub y: FM,
    /// The ground-truth weights that generated the labels (length p),
    /// when the generating model has one.
    pub truth: Option<Vec<f64>>,
}

/// A generated clustering dataset.
#[derive(Debug, Clone)]
pub struct Clustered {
    /// n×p embedding matrix.
    pub x: FM,
    /// The true cluster centers (k×p).
    pub centers: Dense,
    /// Number of mixture components.
    pub k: usize,
}

/// Criteo-like click data: `n×p` standard-normal features and binary
/// labels `y = 1[sigmoid(x·w) > u]` for a deterministic weight vector
/// `w`. Same shape family as the paper's click-prediction dataset
/// (p = 40 there).
pub fn criteo_like(ctx: &FlashCtx, n: u64, p: usize, seed: u64) -> Labeled {
    let x = FM::rnorm(ctx, n, p, 0.0, 1.0, seed);
    // Deterministic, moderately varied ground truth in [-1, 1].
    let truth: Vec<f64> = (0..p)
        .map(|j| {
            let t = (j as f64 * 0.37 + 0.11).sin();
            if j % 3 == 0 {
                t
            } else {
                t * 0.25
            }
        })
        .collect();
    let w = Dense::from_vec(p, 1, truth.clone());
    // P(click) = sigmoid(x·w); threshold against uniform noise.
    let prob = x.matmul(&FM::from_dense(w)).sigmoid();
    let noise = FM::runif(ctx, n, 1, 0.0, 1.0, seed ^ 0x9E37_79B9_7F4A_7C15);
    let y = prob.gt(&noise).cast(flashr_core::DType::F64);
    Labeled { x, y, truth: Some(truth) }
}

/// PageGraph-32ev-like spectral embedding: a mixture of `k` Gaussians
/// with well-separated centers in `p` dimensions (p = 32 in the paper).
/// Row `r` belongs to component `r % k` (exactly balanced), and the
/// mixture is expressed as a DAG so it generates on the fly.
pub fn pagegraph_like(ctx: &FlashCtx, n: u64, p: usize, k: usize, seed: u64) -> Clustered {
    assert!(k >= 1);
    // Deterministic well-separated centers.
    let centers = Dense::from_fn(k, p, |g, j| {
        let phase = (g * 31 + j * 7) as f64;
        4.0 * (phase * 0.618_033_988_75).sin() + if j % k == g { 6.0 } else { 0.0 }
    });
    let noise = FM::rnorm(ctx, n, p, 0.0, 1.0, seed);
    let labels = FM::seq(n, 0.0, 1.0).binary_scalar(BinaryOp::Rem, k as f64, false);
    // x = noise + onehot(labels) %*% centers, expressed per component:
    // indicator (n×1, broadcasts over columns) × center row (1×p sweep).
    let mut x = noise;
    for g in 0..k {
        let ind = labels
            .binary_scalar(BinaryOp::Eq, g as f64, false)
            .cast(flashr_core::DType::F64);
        let row: Vec<f64> = (0..p).map(|j| centers.at(g, j)).collect();
        let center_term = ind.matmul(&FM::from_dense(Dense::from_vec(1, p, row)));
        x = x.binary(BinaryOp::Add, &center_term, false);
    }
    Clustered { x, centers, k }
}

/// The dataset table of the paper (Table 5): name, rows, columns.
pub fn table5_shapes() -> Vec<(&'static str, u64, usize)> {
    vec![
        ("PageGraph-32ev", 3_500_000_000, 32),
        ("Criteo", 4_300_000_000, 40),
        ("PageGraph-32ev-sub", 336_000_000, 32),
        ("Criteo-sub", 325_000_000, 40),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashr_core::session::CtxConfig;

    fn ctx() -> FlashCtx {
        FlashCtx::with_config(CtxConfig { rows_per_part: 256, ..Default::default() }, None)
    }

    #[test]
    fn criteo_shapes_and_label_range() {
        let ctx = ctx();
        let d = criteo_like(&ctx, 2000, 8, 42);
        assert_eq!(d.x.nrow(), 2000);
        assert_eq!(d.x.ncol(), 8);
        assert_eq!(d.y.ncol(), 1);
        let ys = d.y.to_vec(&ctx);
        assert!(ys.iter().all(|&v| v == 0.0 || v == 1.0));
        let pos: f64 = ys.iter().sum();
        assert!(pos > 100.0 && pos < 1900.0, "degenerate label balance: {pos}");
    }

    #[test]
    fn criteo_labels_correlate_with_truth() {
        let ctx = ctx();
        let d = criteo_like(&ctx, 4000, 6, 7);
        let w = Dense::from_vec(6, 1, d.truth.clone().unwrap());
        let score = d.x.matmul(&FM::from_dense(w)).to_vec(&ctx);
        let y = d.y.to_vec(&ctx);
        let (mut sp, mut np, mut sn, mut nn) = (0.0, 0u64, 0.0, 0u64);
        for (s, yy) in score.iter().zip(&y) {
            if *yy > 0.5 {
                sp += s;
                np += 1;
            } else {
                sn += s;
                nn += 1;
            }
        }
        assert!(sp / np as f64 > sn / nn as f64 + 0.3, "labels not informative");
    }

    #[test]
    fn pagegraph_clusters_are_separated() {
        let ctx = ctx();
        let d = pagegraph_like(&ctx, 1200, 8, 3, 5);
        assert_eq!(d.x.nrow(), 1200);
        let xd = d.x.to_dense(&ctx);
        // Row r belongs to component r % 3; nearest-center classification
        // must mostly agree.
        let mut correct = 0;
        for r in 0..1200usize {
            let mut best = usize::MAX;
            let mut best_d = f64::INFINITY;
            for g in 0..3 {
                let mut dist = 0.0;
                for j in 0..8 {
                    let diff = xd.at(r, j) - d.centers.at(g, j);
                    dist += diff * diff;
                }
                if dist < best_d {
                    best_d = dist;
                    best = g;
                }
            }
            if best == r % 3 {
                correct += 1;
            }
        }
        assert!(correct > 1000, "clusters not separated ({correct}/1200 correct)");
    }

    #[test]
    fn generators_are_deterministic() {
        let ctx = ctx();
        let a = criteo_like(&ctx, 500, 4, 9).x.to_dense(&ctx);
        let b = criteo_like(&ctx, 500, 4, 9).x.to_dense(&ctx);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let c = criteo_like(&ctx, 500, 4, 10).x.to_dense(&ctx);
        assert!(a.max_abs_diff(&c) > 0.1, "different seeds must differ");
    }

    #[test]
    fn table5_lists_paper_datasets() {
        let t = table5_shapes();
        assert_eq!(t.len(), 4);
        assert_eq!(t[1].2, 40);
    }
}
